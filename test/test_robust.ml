(* Robustness layer: typed errors, validators, fault injectors, the solver
   degradation cascade, and the guarded lambda/CSV satellites. *)

open Numerics
open Testutil

let params = Cellpop.Params.paper_2011
let times = Array.init 13 (fun i -> 15.0 *. float_of_int i)

let kernel =
  lazy
    (Cellpop.Kernel.estimate ~smooth_window:5 params ~rng:(Rng.create 700) ~n_cells:3000 ~times
       ~n_phi:101)

let basis = Spline.Natural.with_uniform_knots ~lo:0.0 ~hi:1.0 ~num_knots:12

let make_problem ?sigmas ?kernel:k measurements =
  let kernel = match k with Some k -> k | None -> Lazy.force kernel in
  Deconv.Problem.create ?sigmas ~kernel ~basis ~measurements ~params ()

let pulse = Biomodels.Gene_profile.gaussian_pulse ~center:0.5 ~width:0.12 ~height:4.0 ()
let clean_data = lazy (Deconv.Forward.apply_fn (Lazy.force kernel) pulse)

let rng () = Rng.create 42

let solved_by r = r.Robust.Report.solved_by
let degradation r = r.Robust.Report.degradation

let expect_ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "expected Ok, got Error (%s)" (Robust.Error.to_string e)

let expect_error_class expected = function
  | Ok _ -> Alcotest.failf "expected Error (%s), got Ok" (Robust.Error.to_string expected)
  | Error e ->
    if not (Robust.Error.same_class expected e) then
      Alcotest.failf "expected error class %s, got %s"
        (Robust.Error.to_string expected)
        (Robust.Error.to_string e)

let finite_estimate (e : Deconv.Solver.estimate) =
  Robust.Validate.all_finite e.Deconv.Solver.alpha
  && Robust.Validate.all_finite e.Deconv.Solver.profile
  && Robust.Validate.all_finite e.Deconv.Solver.fitted
  && Float.is_finite e.Deconv.Solver.cost

(* ---------------- Error taxonomy ---------------- *)

let all_errors =
  [
    Robust.Error.Ill_conditioned { cond = 1e12 };
    Robust.Error.Qp_stalled { iterations = 100 };
    Robust.Error.Non_finite { stage = "measurements" };
    Robust.Error.Invalid_input { field = "sigmas"; why = "zero" };
    Robust.Error.Kernel_degenerate;
  ]

let test_error_strings () =
  List.iter
    (fun e -> check_true "to_string non-empty" (String.length (Robust.Error.to_string e) > 0))
    all_errors

let test_error_classes () =
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          Alcotest.(check bool)
            "same_class iff same constructor" (i = j) (Robust.Error.same_class a b))
        all_errors)
    all_errors;
  check_true "equal ignores nothing"
    (not
       (Robust.Error.equal
          (Robust.Error.Qp_stalled { iterations = 1 })
          (Robust.Error.Qp_stalled { iterations = 2 })));
  check_true "same_class ignores payload"
    (Robust.Error.same_class
       (Robust.Error.Qp_stalled { iterations = 1 })
       (Robust.Error.Qp_stalled { iterations = 2 }))

let test_error_recoverable () =
  check_true "numerical errors recoverable"
    (List.for_all Robust.Error.recoverable
       [
         Robust.Error.Ill_conditioned { cond = 1e12 };
         Robust.Error.Qp_stalled { iterations = 100 };
         Robust.Error.Non_finite { stage = "x" };
       ]);
  check_true "degenerate kernel is not"
    (not (Robust.Error.recoverable Robust.Error.Kernel_degenerate));
  check_true "bad sigmas are repairable"
    (Robust.Error.recoverable (Robust.Error.Invalid_input { field = "sigmas"; why = "zero" }));
  check_true "structural input errors are not"
    (not (Robust.Error.recoverable (Robust.Error.Invalid_input { field = "times"; why = "" })))

(* ---------------- Validators ---------------- *)

let test_validate_times () =
  expect_ok (Robust.Validate.times ~field:"t" [| 0.0; 1.0; 1.0; 2.0 |]);
  expect_error_class
    (Robust.Error.Invalid_input { field = "t"; why = "" })
    (Robust.Validate.times ~field:"t" [| 0.0; 2.0; 1.0 |]);
  expect_error_class
    (Robust.Error.Invalid_input { field = "t"; why = "" })
    (Robust.Validate.times ~field:"t" [| -1.0; 0.0 |]);
  expect_error_class
    (Robust.Error.Non_finite { stage = "t" })
    (Robust.Validate.times ~field:"t" [| 0.0; Float.nan |])

let test_validate_sigmas () =
  expect_ok (Robust.Validate.sigmas [| 0.5; 1.0 |]);
  List.iter
    (fun bad ->
      expect_error_class
        (Robust.Error.Invalid_input { field = "sigmas"; why = "" })
        (Robust.Validate.sigmas [| 1.0; bad |]))
    [ 0.0; -1.0; Float.nan; Float.infinity ]

let test_validate_kernel_clean () = expect_ok (Robust.Validate.kernel (Lazy.force kernel))

let test_validate_kernel_faults () =
  let k = Lazy.force kernel in
  expect_error_class
    (Robust.Error.Non_finite { stage = "kernel" })
    (Robust.Validate.kernel
       (Robust.Fault.apply (Robust.Fault.kernel_nan_column ~column:7 ()) (rng ()) k));
  expect_error_class Robust.Error.Kernel_degenerate
    (Robust.Validate.kernel
       (Robust.Fault.apply (Robust.Fault.kernel_zero_row ~row:3 ()) (rng ()) k));
  expect_error_class
    (Robust.Error.Invalid_input { field = "kernel times"; why = "" })
    (Robust.Validate.kernel (Robust.Fault.apply Robust.Fault.kernel_shuffle_times (rng ()) k));
  (* A duplicated time point is structurally legal (ties allowed) — it must
     pass validation and instead stress the solver downstream. *)
  expect_ok
    (Robust.Validate.kernel
       (Robust.Fault.apply (Robust.Fault.kernel_duplicate_time ~row:6 ()) (rng ()) k))

let test_problem_validate () =
  expect_ok (Deconv.Problem.validate (make_problem (Lazy.force clean_data)));
  expect_error_class
    (Robust.Error.Non_finite { stage = "measurements" })
    (Deconv.Problem.validate
       (make_problem
          (Robust.Fault.apply (Robust.Fault.nan_at ~index:4 ()) (rng ()) (Lazy.force clean_data))));
  expect_error_class
    (Robust.Error.Invalid_input { field = "sigmas"; why = "" })
    (Deconv.Problem.validate
       (make_problem
          ~sigmas:(Robust.Fault.apply (Robust.Fault.zero_at ~index:2 ()) (rng ()) (Vec.ones 13))
          (Lazy.force clean_data)))

(* ---------------- Fault injectors ---------------- *)

let test_faults_pure () =
  let v = Lazy.force clean_data in
  let before = Array.copy v in
  List.iter
    (fun f -> ignore (Robust.Fault.apply f (rng ()) v))
    [
      Robust.Fault.nan_at ();
      Robust.Fault.inf_at ();
      Robust.Fault.zero_at ();
      Robust.Fault.negate_at ();
      Robust.Fault.spike ~magnitude:10.0 ();
      Robust.Fault.shuffle;
    ];
  check_vec ~tol:0.0 "injectors never mutate their input" before v

let test_fault_nan_inf () =
  let v = Vec.ones 8 in
  let nan = Robust.Fault.apply (Robust.Fault.nan_at ~index:3 ()) (rng ()) v in
  check_true "exactly one NaN" (Float.is_nan nan.(3));
  Alcotest.(check int) "one corrupted entry" 7
    (Array.length (Array.of_list (List.filter Float.is_finite (Array.to_list nan))));
  let inf = Robust.Fault.apply (Robust.Fault.inf_at ~index:0 ()) (rng ()) v in
  check_true "infinity planted" (inf.(0) = Float.infinity)

let test_fault_shuffle () =
  let v = Array.init 9 float_of_int in
  let s = Robust.Fault.apply Robust.Fault.shuffle (rng ()) v in
  check_true "order changed" (s <> v);
  let sorted a = List.sort compare (Array.to_list a) in
  check_true "same multiset" (sorted s = sorted v)

let test_fault_spike () =
  let v = Vec.make 5 2.0 in
  let s = Robust.Fault.apply (Robust.Fault.spike ~index:1 ~magnitude:3.0 ()) (rng ()) v in
  (* ‖v‖∞ = 2, so the spike adds 3 · 2 = 6. *)
  check_close ~tol:1e-12 "spike magnitude relative to scale" 8.0 s.(1)

let test_fault_compose () =
  let f =
    Robust.Fault.compose [ Robust.Fault.nan_at ~index:0 (); Robust.Fault.zero_at ~index:5 () ]
  in
  let v = Robust.Fault.apply f (rng ()) (Vec.ones 8) in
  check_true "first component applied" (Float.is_nan v.(0));
  check_close ~tol:0.0 "second component applied" 0.0 v.(5);
  check_true "composed name mentions both"
    (let n = f.Robust.Fault.name in
     String.length n > String.length "nan_at")

let test_fault_duplicate_time () =
  let k = Lazy.force kernel in
  let k' = Robust.Fault.apply (Robust.Fault.kernel_duplicate_time ~row:6 ()) (rng ()) k in
  check_close ~tol:0.0 "time stamp duplicated" k'.Cellpop.Kernel.times.(5)
    k'.Cellpop.Kernel.times.(6);
  check_vec ~tol:0.0 "row duplicated" (Cellpop.Kernel.row k' 5) (Cellpop.Kernel.row k' 6);
  check_true "original kernel untouched"
    (k.Cellpop.Kernel.times.(5) <> k.Cellpop.Kernel.times.(6))

(* ---------------- solve_robust: clean path ---------------- *)

let test_clean_matches_solve () =
  let problem = make_problem (Lazy.force clean_data) in
  let est, report = expect_ok (Deconv.Solver.solve_robust ~lambda:1e-4 problem) in
  Alcotest.(check int) "degradation 0" 0 (degradation report);
  check_true "solved by constrained QP" (solved_by report = Robust.Report.Constrained_qp);
  check_true "no repairs" (report.Robust.Report.repairs = []);
  Alcotest.(check int) "single attempt" 1 (Robust.Report.num_attempts report);
  check_true "no failed attempts" (Robust.Report.failed_attempts report = []);
  check_true "condition estimated" (report.Robust.Report.condition <> None);
  let reference = Deconv.Solver.solve ~lambda:1e-4 problem in
  check_vec ~tol:0.0 "identical to Solver.solve" reference.Deconv.Solver.alpha
    est.Deconv.Solver.alpha

let prop_clean_equals_solve =
  qcheck ~count:6 "solve_robust == solve on clean problems"
    QCheck2.Gen.(int_range 2 4)
    (fun e ->
      let lambda = 10.0 ** float_of_int (-e) in
      let problem = make_problem (Lazy.force clean_data) in
      let est, report = expect_ok (Deconv.Solver.solve_robust ~lambda problem) in
      let reference = Deconv.Solver.solve ~lambda problem in
      degradation report = 0
      && Vec.approx_equal ~tol:0.0 reference.Deconv.Solver.alpha est.Deconv.Solver.alpha)

(* ---------------- solve_robust: repair + cascade ---------------- *)

let test_nan_measurement_repaired () =
  let poisoned =
    Robust.Fault.apply (Robust.Fault.nan_at ~index:4 ()) (rng ()) (Lazy.force clean_data)
  in
  let est, report = expect_ok (Deconv.Solver.solve_robust ~lambda:1e-4 (make_problem poisoned)) in
  check_true "estimate finite" (finite_estimate est);
  check_true "repair recorded"
    (List.exists
       (fun r -> r.Robust.Report.count = 1)
       report.Robust.Report.repairs);
  check_true "degradation >= 1 after repair" (degradation report >= 1);
  (* Masking one of 13 points should barely move the estimate. *)
  let reference = Deconv.Solver.solve ~lambda:1e-4 (make_problem (Lazy.force clean_data)) in
  check_true "still close to the clean fit"
    (Stats.rmse reference.Deconv.Solver.profile est.Deconv.Solver.profile < 0.5)

let test_zero_sigma_repaired () =
  let sigmas = Robust.Fault.apply (Robust.Fault.zero_at ~index:2 ()) (rng ()) (Vec.make 13 0.1) in
  let est, report =
    expect_ok (Deconv.Solver.solve_robust ~lambda:1e-4 (make_problem ~sigmas (Lazy.force clean_data)))
  in
  check_true "estimate finite" (finite_estimate est);
  check_true "sigma repair recorded"
    (List.exists (fun r -> r.Robust.Report.count = 1) report.Robust.Report.repairs)

let test_repair_disabled_reports_error () =
  let poisoned =
    Robust.Fault.apply (Robust.Fault.nan_at ~index:4 ()) (rng ()) (Lazy.force clean_data)
  in
  let policy = { Deconv.Solver.default_policy with Deconv.Solver.repair_inputs = false } in
  expect_error_class
    (Robust.Error.Non_finite { stage = "measurements" })
    (Deconv.Solver.solve_robust ~policy ~lambda:1e-4 (make_problem poisoned))

let test_degenerate_kernel_is_terminal () =
  let k = Robust.Fault.apply (Robust.Fault.kernel_zero_row ~row:3 ()) (rng ()) (Lazy.force kernel) in
  expect_error_class Robust.Error.Kernel_degenerate
    (Deconv.Solver.solve_robust ~lambda:1e-4 (make_problem ~kernel:k (Lazy.force clean_data)))

let test_stall_falls_back_to_unconstrained () =
  let policy =
    { Deconv.Solver.default_policy with Deconv.Solver.qp_max_iter = 1; max_retries = 1 }
  in
  let est, report =
    expect_ok
      (Deconv.Solver.solve_robust ~policy ~lambda:1e-4 (make_problem (Lazy.force clean_data)))
  in
  check_true "estimate finite" (finite_estimate est);
  Alcotest.(check int) "degradation 2" 2 (degradation report);
  check_true "solved by unconstrained" (solved_by report = Robust.Report.Unconstrained);
  (* Both constrained attempts must be on record as stalls. *)
  let stalls =
    List.filter
      (fun a ->
        a.Robust.Report.stage = Robust.Report.Constrained_qp
        &&
        match a.Robust.Report.outcome with
        | Error (Robust.Error.Qp_stalled _) -> true
        | _ -> false)
      report.Robust.Report.attempts
  in
  Alcotest.(check int) "two recorded stalls" 2 (List.length stalls);
  (* The retry must have escalated both lambda and ridge. *)
  (match
     List.filter (fun a -> a.Robust.Report.stage = Robust.Report.Constrained_qp)
       report.Robust.Report.attempts
   with
  | [ first; second ] ->
    check_true "lambda boosted" (second.Robust.Report.lambda > first.Robust.Report.lambda);
    check_true "ridge escalated" (second.Robust.Report.ridge > first.Robust.Report.ridge)
  | _ -> Alcotest.fail "expected exactly two constrained attempts")

let test_stall_falls_back_to_richardson_lucy () =
  let policy =
    {
      Deconv.Solver.default_policy with
      Deconv.Solver.qp_max_iter = 1;
      max_retries = 0;
      enable_unconstrained = false;
    }
  in
  let est, report =
    expect_ok
      (Deconv.Solver.solve_robust ~policy ~lambda:1e-4 (make_problem (Lazy.force clean_data)))
  in
  check_true "estimate finite" (finite_estimate est);
  Alcotest.(check int) "degradation 3" 3 (degradation report);
  check_true "solved by RL" (solved_by report = Robust.Report.Richardson_lucy);
  Array.iter
    (fun v -> check_true "RL profile nonnegative" (v >= 0.0))
    est.Deconv.Solver.profile;
  (* RL on clean data should still roughly find the pulse. *)
  let truth = Array.map pulse (Lazy.force kernel).Cellpop.Kernel.phases in
  let c = Deconv.Metrics.compare ~truth ~estimate:est.Deconv.Solver.profile in
  check_true "RL fallback recovers the shape" (c.Deconv.Metrics.correlation > 0.8)

let test_everything_disabled_reports_last_error () =
  let policy =
    {
      Deconv.Solver.default_policy with
      Deconv.Solver.qp_max_iter = 1;
      max_retries = 0;
      enable_unconstrained = false;
      enable_richardson_lucy = false;
    }
  in
  expect_error_class
    (Robust.Error.Qp_stalled { iterations = 0 })
    (Deconv.Solver.solve_robust ~policy ~lambda:1e-4 (make_problem (Lazy.force clean_data)))

let test_duplicate_time_kernel_recovered () =
  let k =
    Robust.Fault.apply (Robust.Fault.kernel_duplicate_time ~row:6 ()) (rng ()) (Lazy.force kernel)
  in
  let measurements =
    Robust.Fault.apply (Robust.Fault.spike ~index:6 ~magnitude:0.5 ()) (rng ())
      (Lazy.force clean_data)
  in
  match Deconv.Solver.solve_robust ~lambda:1e-6 (make_problem ~kernel:k measurements) with
  | Ok (est, report) ->
    check_true "estimate finite" (finite_estimate est);
    check_true "report names the stage that solved it"
      (String.length (Robust.Report.stage_name (solved_by report)) > 0)
  | Error e ->
    (* Catching it with a typed error is also acceptable — what is banned
       is an escaped exception. *)
    check_true "typed error" (Robust.Error.recoverable e || e = Robust.Error.Kernel_degenerate)

let test_report_to_string () =
  let policy =
    { Deconv.Solver.default_policy with Deconv.Solver.qp_max_iter = 1; max_retries = 0 }
  in
  let _, report =
    expect_ok
      (Deconv.Solver.solve_robust ~policy ~lambda:1e-4 (make_problem (Lazy.force clean_data)))
  in
  let s = Robust.Report.to_string report in
  let contains needle =
    let nh = String.length s and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub s i nn = needle || go (i + 1)) in
    go 0
  in
  check_true "mentions the solving stage" (contains "unconstrained")

(* ---------------- Pipeline end-to-end ---------------- *)

let small_config =
  {
    (Deconv.Pipeline.default_config ~times) with
    Deconv.Pipeline.n_cells_kernel = 1500;
    n_cells_data = 1500;
    n_phi = 101;
    seed = 11;
  }

let test_pipeline_nan_poisoned_completes () =
  let config =
    {
      small_config with
      Deconv.Pipeline.measurement_fault = Some (Robust.Fault.nan_at ~index:5 ());
    }
  in
  let run = Deconv.Pipeline.run config ~profile:pulse in
  check_true "estimate finite" (finite_estimate run.Deconv.Pipeline.estimate);
  check_true "repair on record"
    (run.Deconv.Pipeline.report.Robust.Report.repairs <> []);
  check_true "recovery still good"
    (run.Deconv.Pipeline.recovery.Deconv.Metrics.correlation > 0.9)

let test_pipeline_clean_reports_degradation_zero () =
  let run = Deconv.Pipeline.run small_config ~profile:pulse in
  Alcotest.(check int) "no degradation on clean data" 0
    run.Deconv.Pipeline.report.Robust.Report.degradation

(* ---------------- QP status satellite ---------------- *)

let stall_problem () =
  (* A QP with active inequalities that cannot converge in one step. *)
  let h = Mat.of_rows [| [| 2.0; 0.0 |]; [| 0.0; 2.0 |] |] in
  let g = [| -2.0; -2.0 |] in
  let a_ineq = Mat.of_rows [| [| -1.0; 0.0 |]; [| 0.0; -1.0 |] |] in
  let b_ineq = [| -0.5; -0.5 |] in
  {
    Optimize.Qp.h;
    g;
    c_eq = None;
    d_eq = None;
    a_ineq = Some a_ineq;
    b_ineq = Some b_ineq;
  }

let test_qp_stall_status () =
  let s = Optimize.Qp.solve ~max_iter:1 ~fail_on_stall:false (stall_problem ()) in
  check_true "reports stall" (s.Optimize.Qp.status = Optimize.Qp.Stalled);
  Alcotest.(check int) "iteration count" 1 s.Optimize.Qp.iterations;
  (match Optimize.Qp.solve ~max_iter:1 (stall_problem ()) with
  | exception Optimize.Qp.Infeasible _ -> ()
  | _ -> Alcotest.fail "default fail_on_stall should raise Infeasible");
  let converged = Optimize.Qp.solve (stall_problem ()) in
  check_true "converges with the full budget"
    (converged.Optimize.Qp.status = Optimize.Qp.Converged)

(* ---------------- Lambda guard satellite ---------------- *)

let test_lambda_skips_non_finite_candidates () =
  let problem = make_problem (Lazy.force clean_data) in
  let lambdas = [| Float.nan; 1e-5; Float.infinity; 1e-3; -1.0 |] in
  let lambda = Deconv.Lambda.select problem ~method_:`Gcv ~lambdas () in
  check_true "winner from the finite candidates" (Float.equal lambda 1e-5 || Float.equal lambda 1e-3)

let test_lambda_all_non_finite () =
  let problem = make_problem (Lazy.force clean_data) in
  let lambdas = [| Float.nan; Float.infinity; -1.0 |] in
  expect_error_class
    (Robust.Error.Non_finite { stage = "" })
    (Deconv.Lambda.select_result problem ~method_:`Gcv ~lambdas ());
  expect_error_class
    (Robust.Error.Invalid_input { field = "lambda"; why = "" })
    (Deconv.Lambda.select_result problem ~method_:(`Fixed Float.nan) ());
  (match Deconv.Lambda.select problem ~method_:`Lcurve ~lambdas () with
  | exception Robust.Error.Error (Robust.Error.Non_finite _) -> ()
  | _ -> Alcotest.fail "raising form should raise the typed error")

let test_lambda_result_matches_select () =
  let problem = make_problem (Lazy.force clean_data) in
  let a = Deconv.Lambda.select problem ~method_:`Gcv () in
  let b = expect_ok (Deconv.Lambda.select_result problem ~method_:`Gcv ()) in
  check_close ~tol:0.0 "select and select_result agree" a b

(* ---------------- CSV error satellite ---------------- *)

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let with_temp_csv contents f =
  let path = Filename.temp_file "robust_csv" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      write_file path contents;
      f path)

let test_csv_reports_line_and_column () =
  with_temp_csv "minutes,g\n0,1.5\n15,oops\n30,2.5\n" (fun path ->
      match Dataio.Csv.read_result ~path with
      | Ok _ -> Alcotest.fail "expected a parse error"
      | Error e ->
        Alcotest.(check int) "line of the bad field" 3 e.Dataio.Csv.line;
        Alcotest.(check int) "column of the bad field" 2 e.Dataio.Csv.column;
        check_true "message mentions the token"
          (String.length (Dataio.Csv.error_to_string e) > 0))

let test_csv_ragged_row () =
  with_temp_csv "minutes,g\n0,1.5\n15,2.0,extra\n" (fun path ->
      match Dataio.Csv.read_result ~path with
      | Ok _ -> Alcotest.fail "expected a parse error"
      | Error e ->
        Alcotest.(check int) "ragged line" 3 e.Dataio.Csv.line;
        Alcotest.(check int) "column past the expected width" 3 e.Dataio.Csv.column)

let test_csv_raising_form () =
  with_temp_csv "a,b\n1,2\nx,4\n" (fun path ->
      match Dataio.Csv.read ~path with
      | exception Dataio.Csv.Parse_error e ->
        Alcotest.(check int) "same error as the result form" 3 e.Dataio.Csv.line
      | _ -> Alcotest.fail "expected Parse_error")

let expect_csv_ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected CSV error: %s" (Dataio.Csv.error_to_string e)

let test_datasets_load_measurements () =
  with_temp_csv "minutes,g,sigma\n30,3.0,0.3\n0,1.0,0.1\n15,2.0,0.2\n" (fun path ->
      let t, g, s = expect_csv_ok (Dataio.Datasets.load_measurements ~path) in
      check_vec ~tol:0.0 "sorted by time" [| 0.0; 15.0; 30.0 |] t;
      check_vec ~tol:0.0 "g reordered with times" [| 1.0; 2.0; 3.0 |] g;
      check_vec ~tol:0.0 "sigma reordered with times" [| 0.1; 0.2; 0.3 |]
        (Option.value s ~default:[||]))

let test_datasets_wrong_columns () =
  with_temp_csv "a\n1\n2\n" (fun path ->
      match Dataio.Datasets.load_measurements ~path with
      | Ok _ -> Alcotest.fail "expected an error for a 1-column file"
      | Error _ -> ())

let test_table_of_csv () =
  with_temp_csv "minutes,g\n0,1.5\n15,2.5\n" (fun path ->
      match Dataio.Table.of_csv ~path with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "unexpected error: %s" (Dataio.Csv.error_to_string e))

let tests =
  [
    ( "robust-errors",
      [
        case "to_string total" test_error_strings;
        case "equal and same_class" test_error_classes;
        case "recoverable classification" test_error_recoverable;
        case "validate times" test_validate_times;
        case "validate sigmas" test_validate_sigmas;
        case "validate clean kernel" test_validate_kernel_clean;
        case "validate faulty kernels" test_validate_kernel_faults;
        case "problem validate" test_problem_validate;
      ] );
    ( "robust-faults",
      [
        case "injectors are pure" test_faults_pure;
        case "nan and inf injection" test_fault_nan_inf;
        case "shuffle permutes" test_fault_shuffle;
        case "spike scales with data" test_fault_spike;
        case "compose" test_fault_compose;
        case "duplicate time point" test_fault_duplicate_time;
      ] );
    ( "robust-solver",
      [
        case "clean path matches solve" test_clean_matches_solve;
        prop_clean_equals_solve;
        case "nan measurement repaired" test_nan_measurement_repaired;
        case "zero sigma repaired" test_zero_sigma_repaired;
        case "repair disabled -> typed error" test_repair_disabled_reports_error;
        case "degenerate kernel -> typed error" test_degenerate_kernel_is_terminal;
        case "stall -> unconstrained fallback" test_stall_falls_back_to_unconstrained;
        case "stall -> Richardson-Lucy fallback" test_stall_falls_back_to_richardson_lucy;
        case "no fallback -> last error" test_everything_disabled_reports_last_error;
        case "duplicated time point survives" test_duplicate_time_kernel_recovered;
        case "report rendering" test_report_to_string;
        case "qp stall status" test_qp_stall_status;
      ] );
    ( "robust-pipeline",
      [
        case "nan-poisoned run completes" test_pipeline_nan_poisoned_completes;
        case "clean run reports degradation 0" test_pipeline_clean_reports_degradation_zero;
      ] );
    ( "robust-lambda",
      [
        case "skips non-finite candidates" test_lambda_skips_non_finite_candidates;
        case "all non-finite -> typed error" test_lambda_all_non_finite;
        case "select_result agrees with select" test_lambda_result_matches_select;
      ] );
    ( "robust-csv",
      [
        case "line and column reported" test_csv_reports_line_and_column;
        case "ragged row located" test_csv_ragged_row;
        case "raising form carries the error" test_csv_raising_form;
        case "load_measurements sorts" test_datasets_load_measurements;
        case "wrong column count" test_datasets_wrong_columns;
        case "table from csv" test_table_of_csv;
      ] );
  ]
