open Numerics
open Testutil

let test_poisson_moments () =
  let rng = Rng.create 1001 in
  List.iter
    (fun lambda ->
      let n = 40_000 in
      let xs = Array.init n (fun _ -> float_of_int (Rng.poisson rng ~lambda)) in
      check_close ~tol:(0.03 *. Float.max 1.0 lambda) "poisson mean" lambda (Stats.mean xs);
      check_close ~tol:(0.08 *. Float.max 1.0 lambda) "poisson variance" lambda (Stats.variance xs))
    [ 0.5; 3.0; 20.0; 150.0 ]

let test_poisson_zero () =
  let rng = Rng.create 1002 in
  Alcotest.(check int) "lambda 0" 0 (Rng.poisson rng ~lambda:0.0)

let test_network_validation () =
  let net = Stochastic.Networks.birth_death ~birth:2.0 ~death:1.0 in
  Alcotest.(check int) "one species" 1 (Stochastic.Reaction_network.num_species net)

let test_propensity_mass_action () =
  let r = { Stochastic.Reaction_network.reactants = [ (0, 1); (1, 1) ]; products = []; rate = 2.0 } in
  check_close "bimolecular" (2.0 *. 3.0 *. 4.0)
    (Stochastic.Reaction_network.propensity r [| 3; 4 |]);
  (* Homodimerization uses the C(x,2) combinatorial count. *)
  let dimer = { Stochastic.Reaction_network.reactants = [ (0, 2) ]; products = []; rate = 1.0 } in
  check_close "dimer count" (float_of_int (5 * 4 / 2))
    (Stochastic.Reaction_network.propensity dimer [| 5 |]);
  check_close "insufficient copies" 0.0 (Stochastic.Reaction_network.propensity dimer [| 1 |])

let test_apply_and_net_change () =
  let net = Stochastic.Networks.birth_death ~birth:2.0 ~death:1.0 in
  let state = [| 5 |] in
  Stochastic.Reaction_network.apply net.Stochastic.Reaction_network.reactions.(0) state;
  Alcotest.(check int) "birth applied" 6 state.(0);
  Stochastic.Reaction_network.apply net.Stochastic.Reaction_network.reactions.(1) state;
  Alcotest.(check int) "death applied" 5 state.(0);
  let delta =
    Stochastic.Reaction_network.net_change net net.Stochastic.Reaction_network.reactions.(0)
  in
  Alcotest.(check (array int)) "net change" [| 1 |] delta

let test_birth_death_stationary () =
  (* Stationary law is Poisson(birth/death): mean = variance = 10. *)
  let net = Stochastic.Networks.birth_death ~birth:10.0 ~death:1.0 in
  let rng = Rng.create 1003 in
  let trajectory = Stochastic.Gillespie.direct net ~rng ~x0:[| 0 |] ~t0:0.0 ~t1:500.0 in
  let samples =
    Array.init 400 (fun i ->
        Stochastic.Gillespie.value_at trajectory ~species:0 (100.0 +. float_of_int i))
  in
  check_close ~tol:0.8 "stationary mean" 10.0 (Stats.mean samples);
  check_close ~tol:2.5 "stationary variance" 10.0 (Stats.variance samples)

let test_trajectory_monotone_times () =
  let net = Stochastic.Networks.birth_death ~birth:5.0 ~death:0.5 in
  let trajectory =
    Stochastic.Gillespie.direct net ~rng:(Rng.create 1004) ~x0:[| 3 |] ~t0:0.0 ~t1:50.0
  in
  let times = trajectory.Stochastic.Gillespie.times in
  for i = 0 to Array.length times - 2 do
    check_true "event times increase" (times.(i) <= times.(i + 1))
  done;
  check_close "ends at t1" 50.0 times.(Array.length times - 1)

let test_extinction_stops () =
  (* Pure death: propensity reaches zero and the simulation stops cleanly. *)
  let net =
    Stochastic.Reaction_network.create ~species:[ "X" ]
      ~reactions:[ { Stochastic.Reaction_network.reactants = [ (0, 1) ]; products = []; rate = 5.0 } ]
  in
  let trajectory =
    Stochastic.Gillespie.direct net ~rng:(Rng.create 1005) ~x0:[| 10 |] ~t0:0.0 ~t1:100.0
  in
  let last = trajectory.Stochastic.Gillespie.states.(Array.length trajectory.Stochastic.Gillespie.states - 1) in
  Alcotest.(check int) "extinct" 0 last.(0)

let test_gillespie_deterministic_seed () =
  let net = Stochastic.Networks.birth_death ~birth:4.0 ~death:1.0 in
  let run () =
    Stochastic.Gillespie.direct net ~rng:(Rng.create 7) ~x0:[| 2 |] ~t0:0.0 ~t1:20.0
  in
  let a = run () and b = run () in
  Alcotest.(check int) "same event count"
    (Array.length a.Stochastic.Gillespie.times)
    (Array.length b.Stochastic.Gillespie.times)

let test_ssa_mean_matches_ode () =
  (* Ensemble SSA mean tracks the deterministic limit for the LV network. *)
  let p = Biomodels.Lotka_volterra.default_params in
  let volume = 150.0 in
  let net =
    Stochastic.Networks.lotka_volterra ~a:p.Biomodels.Lotka_volterra.a
      ~b:p.Biomodels.Lotka_volterra.b ~c:p.Biomodels.Lotka_volterra.c
      ~d:p.Biomodels.Lotka_volterra.d ~volume
  in
  let x0_counts =
    Stochastic.Networks.concentrations_to_counts ~volume Biomodels.Lotka_volterra.default_x0
  in
  let times = Vec.linspace 0.0 100.0 5 in
  let mean =
    Stochastic.Gillespie.mean_trajectory ~runs:40 net ~rng:(Rng.create 1006) ~x0:x0_counts ~times
  in
  let det = Biomodels.Lotka_volterra.simulate p ~x0:Biomodels.Lotka_volterra.default_x0 ~times in
  for i = 0 to 4 do
    check_close ~tol:0.25 "x1 mean-field"
      (Mat.get det.Ode.states i 0)
      (Mat.get mean i 0 /. volume);
    check_close ~tol:0.6 "x2 mean-field"
      (Mat.get det.Ode.states i 1)
      (Mat.get mean i 1 /. volume)
  done

let test_deterministic_rhs_matches_lv () =
  (* The network's mean-field RHS equals the analytic LV equations. *)
  let p = Biomodels.Lotka_volterra.default_params in
  let volume = 100.0 in
  let net =
    Stochastic.Networks.lotka_volterra ~a:p.Biomodels.Lotka_volterra.a
      ~b:p.Biomodels.Lotka_volterra.b ~c:p.Biomodels.Lotka_volterra.c
      ~d:p.Biomodels.Lotka_volterra.d ~volume
  in
  let rhs = Stochastic.Reaction_network.deterministic_rhs net ~volume in
  let analytic = Biomodels.Lotka_volterra.system p in
  List.iter
    (fun state ->
      check_vec ~tol:1e-9 "rhs matches" (analytic 0.0 state) (rhs 0.0 state))
    [ [| 1.0; 2.0 |]; [| 0.4; 8.0 |]; [| 2.5; 0.5 |] ]

let test_tau_leap_tracks_direct () =
  let net = Stochastic.Networks.birth_death ~birth:50.0 ~death:1.0 in
  let trajectory =
    Stochastic.Gillespie.tau_leap net ~rng:(Rng.create 1007) ~x0:[| 0 |] ~t0:0.0 ~t1:30.0 ~tau:0.05
  in
  (* Stationary mean 50 after burn-in. *)
  let samples =
    Array.init 200 (fun i ->
        Stochastic.Gillespie.value_at trajectory ~species:0 (10.0 +. (0.1 *. float_of_int i)))
  in
  check_close ~tol:4.0 "tau-leap stationary mean" 50.0 (Stats.mean samples)

let test_telegraph_stationary_mean () =
  let tg = Stochastic.Networks.telegraph ~k_on:0.1 ~k_off:0.3 ~k_transcribe:2.0 ~k_degrade:0.1 in
  let trajectory =
    Stochastic.Gillespie.direct tg ~rng:(Rng.create 1008) ~x0:[| 1; 0; 0 |] ~t0:0.0 ~t1:3000.0
  in
  let samples =
    Array.init 2000 (fun i ->
        Stochastic.Gillespie.value_at trajectory ~species:2 (800.0 +. float_of_int i))
  in
  (* Mean = (k_tx / k_deg) * k_on/(k_on+k_off) = 20 * 0.25 = 5. *)
  check_close ~tol:0.8 "telegraph mean" 5.0 (Stats.mean samples);
  (* The two-state promoter makes mRNA super-Poissonian (variance > mean). *)
  check_true "super-poissonian" (Stats.variance samples > Stats.mean samples)

let test_sample_matrix () =
  let net = Stochastic.Networks.birth_death ~birth:5.0 ~death:1.0 in
  let trajectory =
    Stochastic.Gillespie.direct net ~rng:(Rng.create 1009) ~x0:[| 2 |] ~t0:0.0 ~t1:10.0
  in
  let sampled = Stochastic.Gillespie.sample trajectory ~times:[| 0.0; 5.0; 10.0 |] in
  Alcotest.(check (pair int int)) "sample dims" (3, 1) (Mat.dims sampled);
  check_close "initial state" 2.0 (Mat.get sampled 0 0)

let tests =
  [
    ( "stochastic",
      [
        case "poisson moments" test_poisson_moments;
        case "poisson zero" test_poisson_zero;
        case "network validation" test_network_validation;
        case "mass-action propensities" test_propensity_mass_action;
        case "apply and net change" test_apply_and_net_change;
        case "birth-death stationary law" test_birth_death_stationary;
        case "trajectory time ordering" test_trajectory_monotone_times;
        case "extinction handled" test_extinction_stops;
        case "deterministic given seed" test_gillespie_deterministic_seed;
        case "SSA mean matches ODE" test_ssa_mean_matches_ode;
        case "mean-field RHS equals LV" test_deterministic_rhs_matches_lv;
        case "tau-leap tracks stationary mean" test_tau_leap_tracks_direct;
        case "telegraph stationary mean" test_telegraph_stationary_mean;
        case "sample matrix" test_sample_matrix;
      ] );
  ]
