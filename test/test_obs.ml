(* Observability layer: mock clock, span nesting, metric aggregation,
   JSONL round-trip, zero-cost disabled path, and an end-to-end pipeline
   smoke test asserting the span hierarchy. *)

open Testutil

(* Every test that installs a sink / enables metrics / touches the clock
   cleans up through this wrapper so a failure cannot poison later tests. *)
let with_clean_obs f () =
  Obs.Span.reset ();
  Obs.Metrics.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Export.uninstall ();
      Obs.Metrics.disable ();
      Obs.Metrics.reset ();
      Obs.Span.reset ();
      Obs.Clock.set_source Obs.Clock.wall)
    f

let span_of = function
  | Obs.Export.Span s -> s
  | Obs.Export.Metric m -> Alcotest.failf "expected a span, got metric %s" m.Obs.Export.metric_name
  | Obs.Export.Point p -> Alcotest.failf "expected a span, got point %s" p.Obs.Export.series

let spans events = List.filter_map (function Obs.Export.Span s -> Some s | _ -> None) events

let find_span name events =
  match List.find_opt (fun s -> String.equal s.Obs.Export.name name) (spans events) with
  | Some s -> s
  | None -> Alcotest.failf "no span named %s in trace" name

(* ---------------- clock ---------------- *)

let test_manual_clock () =
  let source, advance = Obs.Clock.manual ~start:10.0 () in
  Obs.Clock.with_source source (fun () ->
      Alcotest.(check (float 0.0)) "start" 10.0 (Obs.Clock.now ());
      advance 2.5;
      Alcotest.(check (float 0.0)) "advanced" 12.5 (Obs.Clock.now ()))

let test_clock_monotonic_clamp () =
  let t = ref 5.0 in
  Obs.Clock.with_source (fun () -> !t) (fun () ->
      Alcotest.(check (float 0.0)) "first read" 5.0 (Obs.Clock.now ());
      t := 3.0;
      (* the source stepped backwards; [now] must not *)
      Alcotest.(check (float 0.0)) "clamped" 5.0 (Obs.Clock.now ());
      t := 7.0;
      Alcotest.(check (float 0.0)) "resumes" 7.0 (Obs.Clock.now ()))

let test_with_source_restores () =
  let source, _ = Obs.Clock.manual ~start:42.0 () in
  let before = Obs.Clock.now () in
  (try Obs.Clock.with_source source (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check bool) "wall clock restored after exception" true (Obs.Clock.now () >= before)

(* ---------------- spans ---------------- *)

let test_span_nesting =
  with_clean_obs @@ fun () ->
  let source, advance = Obs.Clock.manual () in
  let sink, recorded = Obs.Export.memory () in
  Obs.Export.install sink;
  Obs.Clock.with_source source (fun () ->
      Obs.Span.with_ "outer" (fun outer ->
          Obs.Span.set_int outer "k" 1;
          advance 1.0;
          Obs.Span.with_ "first" (fun _ -> advance 0.25);
          Obs.Span.with_ "second" (fun sp ->
              Obs.Span.set_str sp "tag" "x";
              advance 0.5)));
  match recorded () with
  | [ first; second; outer ] ->
    let first = span_of first and second = span_of second and outer = span_of outer in
    Alcotest.(check string) "close order: first child" "first" first.Obs.Export.name;
    Alcotest.(check string) "close order: second child" "second" second.Obs.Export.name;
    Alcotest.(check string) "close order: outer last" "outer" outer.Obs.Export.name;
    Alcotest.(check (option int)) "outer is root" None outer.Obs.Export.parent;
    Alcotest.(check (option int)) "first under outer" (Some outer.Obs.Export.id)
      first.Obs.Export.parent;
    Alcotest.(check (option int)) "second under outer" (Some outer.Obs.Export.id)
      second.Obs.Export.parent;
    Alcotest.(check (float 0.0)) "first duration" 0.25
      (first.Obs.Export.stop_s -. first.Obs.Export.start_s);
    Alcotest.(check (float 0.0)) "second duration" 0.5
      (second.Obs.Export.stop_s -. second.Obs.Export.start_s);
    Alcotest.(check (float 0.0)) "outer duration" 1.75
      (outer.Obs.Export.stop_s -. outer.Obs.Export.start_s);
    Alcotest.(check bool) "outer kept its attr" true
      (List.mem_assoc "k" outer.Obs.Export.attrs)
  | evs -> Alcotest.failf "expected 3 spans, got %d events" (List.length evs)

let test_span_emits_on_exception =
  with_clean_obs @@ fun () ->
  let sink, recorded = Obs.Export.memory () in
  Obs.Export.install sink;
  (try Obs.Span.with_ "doomed" (fun _ -> failwith "boom") with Failure _ -> ());
  Alcotest.(check int) "span still emitted" 1 (List.length (spans (recorded ())));
  (* the stack must be clean: a fresh span is a root, not a child of [doomed] *)
  Obs.Span.with_ "after" (fun _ -> ());
  let after = find_span "after" (recorded ()) in
  Alcotest.(check (option int)) "stack popped on exception" None after.Obs.Export.parent

let test_span_disabled_is_noop =
  with_clean_obs @@ fun () ->
  Alcotest.(check bool) "tracing off" false (Obs.Span.enabled ());
  let r =
    Obs.Span.with_ "invisible" (fun sp ->
        Obs.Span.set_float sp "x" 1.0;
        17)
  in
  Alcotest.(check int) "body result passes through" 17 r;
  (* installing a sink afterwards must see nothing retroactively *)
  let sink, recorded = Obs.Export.memory () in
  Obs.Export.install sink;
  Alcotest.(check int) "no events recorded while disabled" 0 (List.length (recorded ()))

(* ---------------- metrics ---------------- *)

let test_metrics_disabled_noop =
  with_clean_obs @@ fun () ->
  Obs.Metrics.incr "c";
  Obs.Metrics.set "g" 1.0;
  Obs.Metrics.observe "h" 2.0;
  Alcotest.(check int) "nothing registered while disabled" 0
    (List.length (Obs.Metrics.snapshot ()))

let test_metrics_aggregation =
  with_clean_obs @@ fun () ->
  Obs.Metrics.enable ();
  Obs.Metrics.incr "solves";
  Obs.Metrics.incr ~by:3.0 "solves";
  Obs.Metrics.set "condition" 10.0;
  Obs.Metrics.set "condition" 4.0;
  Obs.Metrics.observe "iters" 2.0;
  Obs.Metrics.observe "iters" 6.0;
  Obs.Metrics.observe "iters" 4.0;
  let field snap name =
    match List.assoc_opt name snap.Obs.Metrics.fields with
    | Some v -> v
    | None -> Alcotest.failf "metric %s has no field %s" snap.Obs.Metrics.name name
  in
  let by_name name =
    match
      List.find_opt (fun s -> String.equal s.Obs.Metrics.name name) (Obs.Metrics.snapshot ())
    with
    | Some s -> s
    | None -> Alcotest.failf "no metric named %s" name
  in
  Alcotest.(check (float 0.0)) "counter accumulates" 4.0 (field (by_name "solves") "value");
  Alcotest.(check (float 0.0)) "gauge keeps latest" 4.0 (field (by_name "condition") "value");
  let h = by_name "iters" in
  Alcotest.(check (float 0.0)) "histogram count" 3.0 (field h "count");
  Alcotest.(check (float 0.0)) "histogram sum" 12.0 (field h "sum");
  Alcotest.(check (float 0.0)) "histogram mean" 4.0 (field h "mean");
  Alcotest.(check (float 0.0)) "histogram min" 2.0 (field h "min");
  Alcotest.(check (float 0.0)) "histogram max" 6.0 (field h "max");
  Alcotest.(check (float 0.0)) "histogram p50" 4.0 (field h "p50")

let test_metrics_percentiles =
  with_clean_obs @@ fun () ->
  Obs.Metrics.enable ();
  (* 1..100 in shuffled-ish order: percentiles must sort, not trust
     insertion order. Nearest-rank on n=100: p50 -> index 50 -> 51,
     p90 -> index 89 -> 90, p99 -> index 98 -> 99. *)
  for i = 0 to 99 do
    Obs.Metrics.observe "lat" (float_of_int (((i * 37) mod 100) + 1))
  done;
  let snap =
    match
      List.find_opt (fun s -> String.equal s.Obs.Metrics.name "lat") (Obs.Metrics.snapshot ())
    with
    | Some s -> s
    | None -> Alcotest.fail "histogram not registered"
  in
  let field name =
    match List.assoc_opt name snap.Obs.Metrics.fields with
    | Some v -> v
    | None -> Alcotest.failf "no field %s" name
  in
  Alcotest.(check (float 0.0)) "count" 100.0 (field "count");
  Alcotest.(check (float 0.0)) "p50" 51.0 (field "p50");
  Alcotest.(check (float 0.0)) "p90" 90.0 (field "p90");
  Alcotest.(check (float 0.0)) "p99" 99.0 (field "p99");
  Alcotest.(check (float 0.0)) "min still exact" 1.0 (field "min");
  Alcotest.(check (float 0.0)) "max still exact" 100.0 (field "max")

let test_metrics_events_round_trip =
  with_clean_obs @@ fun () ->
  Obs.Metrics.enable ();
  Obs.Metrics.incr ~by:2.0 "qp.solves";
  Obs.Metrics.observe "qp.iters" 5.0;
  List.iter
    (fun ev ->
      let line = Obs.Export.to_json ev in
      match Obs.Export.of_json line with
      | Ok ev' ->
        Alcotest.(check string) ("round-trip " ^ line) line (Obs.Export.to_json ev')
      | Error msg -> Alcotest.failf "could not parse %s: %s" line msg)
    (Obs.Metrics.events ())

(* ---------------- export ---------------- *)

let nasty = "quote\" backslash\\ newline\n tab\t ctrl\x02 del\x7f utf8 \xc3\xa9"

let test_json_escaping () =
  let ev =
    Obs.Export.Span
      { Obs.Export.id = 1; parent = None; name = nasty; start_s = 0.0; stop_s = 1.0;
        attrs = [ ("s", Obs.Export.Str nasty) ] }
  in
  let line = Obs.Export.to_json ev in
  Alcotest.(check bool) "single line" false (String.contains line '\n');
  match Obs.Export.of_json line with
  | Ok (Obs.Export.Span s) ->
    Alcotest.(check string) "name survives escaping" nasty s.Obs.Export.name;
    (match List.assoc_opt "s" s.Obs.Export.attrs with
    | Some (Obs.Export.Str v) -> Alcotest.(check string) "attr survives escaping" nasty v
    | _ -> Alcotest.fail "attr s missing or wrong type")
  | Ok _ -> Alcotest.fail "parsed to a metric"
  | Error msg -> Alcotest.failf "parse failed: %s" msg

let test_json_value_types () =
  let ev =
    Obs.Export.Span
      { Obs.Export.id = 3; parent = Some 2; name = "typed"; start_s = 0.5; stop_s = 0.75;
        attrs =
          [ ("f", Obs.Export.Float 1.25); ("neg", Obs.Export.Float (-0.001));
            ("i", Obs.Export.Int (-7)); ("b", Obs.Export.Bool true);
            ("s", Obs.Export.Str "plain") ] }
  in
  let line = Obs.Export.to_json ev in
  match Obs.Export.of_json line with
  | Ok ev' ->
    Alcotest.(check string) "fixed point" line (Obs.Export.to_json ev');
    let s = span_of ev' in
    Alcotest.(check (option int)) "parent" (Some 2) s.Obs.Export.parent;
    (match List.assoc_opt "i" s.Obs.Export.attrs with
    | Some (Obs.Export.Int -7) -> ()
    | _ -> Alcotest.fail "Int attr did not round-trip as Int");
    (match List.assoc_opt "f" s.Obs.Export.attrs with
    | Some (Obs.Export.Float v) -> Alcotest.(check (float 0.0)) "float value" 1.25 v
    | _ -> Alcotest.fail "Float attr did not round-trip as Float")
  | Error msg -> Alcotest.failf "parse failed: %s" msg

let test_json_rejects_malformed () =
  List.iter
    (fun line ->
      match Obs.Export.of_json line with
      | Ok _ -> Alcotest.failf "accepted malformed input: %s" line
      | Error _ -> ())
    [
      ""; "{"; "{\"ev\":\"span\"}"; "not json at all";
      "{\"ev\":\"span\",\"id\":1,\"name\":\"x\",\"start\":0,\"stop\":\"oops\",\"parent\":null,\"attrs\":{}}";
      "{\"ev\":\"mystery\",\"id\":1}";
    ]

let test_read_jsonl =
  with_clean_obs @@ fun () ->
  let path = Filename.temp_file "obs_test" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let source, advance = Obs.Clock.manual () in
      let oc = open_out path in
      Obs.Export.install (Obs.Export.jsonl oc);
      Obs.Metrics.enable ();
      Obs.Clock.with_source source (fun () ->
          Obs.Span.with_ "root" (fun _ ->
              advance 1.0;
              Obs.Span.with_ "leaf" (fun _ -> advance 0.5);
              Obs.Metrics.incr "n"));
      List.iter Obs.Export.emit (Obs.Metrics.events ());
      Obs.Export.uninstall ();
      close_out oc;
      let ic = open_in path in
      let events =
        Fun.protect ~finally:(fun () -> close_in ic) (fun () -> Obs.Export.read_jsonl ic)
      in
      match events with
      | Error msg -> Alcotest.failf "read_jsonl failed: %s" msg
      | Ok events ->
        Alcotest.(check int) "two spans and one metric" 3 (List.length events);
        let root = find_span "root" events and leaf = find_span "leaf" events in
        Alcotest.(check (option int)) "leaf under root" (Some root.Obs.Export.id)
          leaf.Obs.Export.parent;
        (match List.rev events with
        | Obs.Export.Metric m :: _ ->
          Alcotest.(check string) "metric name" "n" m.Obs.Export.metric_name
        | _ -> Alcotest.fail "metrics should follow spans in the stream"))

let test_read_jsonl_reports_line =
  with_clean_obs @@ fun () ->
  let path = Filename.temp_file "obs_test" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc
        "{\"ev\":\"metric\",\"name\":\"ok\",\"kind\":\"counter\",\"fields\":{\"value\":1.0}}\n\n{broken\n";
      close_out oc;
      let ic = open_in path in
      let r = Fun.protect ~finally:(fun () -> close_in ic) (fun () -> Obs.Export.read_jsonl ic) in
      match r with
      | Ok _ -> Alcotest.fail "accepted a malformed line"
      | Error msg ->
        Alcotest.(check bool)
          (Printf.sprintf "error names line 3 (got %S)" msg)
          true
          (String.length msg >= 6))

(* ---------------- pipeline smoke test ---------------- *)

let ancestors events =
  let by_id = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace by_id s.Obs.Export.id s) (spans events);
  fun (s : Obs.Export.span) ->
    let rec up acc = function
      | None -> List.rev acc
      | Some id -> (
        match Hashtbl.find_opt by_id id with
        | None -> List.rev acc
        | Some p -> up (p.Obs.Export.name :: acc) p.Obs.Export.parent)
    in
    up [] s.Obs.Export.parent

let contains haystack needle =
  let lh = String.length haystack and ln = String.length needle in
  let rec go i =
    i + ln <= lh && (String.equal (String.sub haystack i ln) needle || go (i + 1))
  in
  go 0

let test_output_top_aggregates =
  with_clean_obs @@ fun () ->
  let source, advance = Obs.Clock.manual () in
  Obs.Clock.with_source source @@ fun () ->
  let sink, recorded = Obs.Export.memory () in
  Obs.Export.install sink;
  Obs.Span.with_ "outer" (fun _ ->
      advance 2.0;
      Obs.Span.with_ "inner" (fun _ -> advance 1.0));
  let events = recorded () in
  let render top =
    let path = Filename.temp_file "obs_top" ".txt" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        Out_channel.with_open_text path (fun oc -> Obs.Export.output_top oc ~top events);
        In_channel.with_open_text path In_channel.input_all)
  in
  let full = render 0 in
  check_true "outer listed" (contains full "outer");
  check_true "inner listed" (contains full "inner");
  check_true "two names counted" (contains full "(2 of 2 names)");
  (* outer ran 3s total; inner is charged against its self time, so the
     sort by total puts outer first. top:1 must then drop inner. *)
  let top1 = render 1 in
  check_true "outer survives the cut" (contains top1 "outer");
  check_true "inner cut by top 1" (not (contains top1 "inner"))

let test_pipeline_span_hierarchy =
  with_clean_obs @@ fun () ->
  let sink, recorded = Obs.Export.memory () in
  Obs.Export.install sink;
  Obs.Metrics.enable ();
  let times = Array.init 6 (fun i -> 30.0 *. float_of_int i) in
  let config =
    { (Deconv.Pipeline.default_config ~times) with
      Deconv.Pipeline.n_cells_kernel = 300;
      n_cells_data = 300;
      n_phi = 41;
      num_knots = 8;
      selection = `Fixed 1e-4;
      seed = 11;
    }
  in
  let profile phi = 1.0 +. (0.5 *. Float.sin (2.0 *. Float.pi *. phi)) in
  let _run = Deconv.Pipeline.run config ~profile in
  let events = recorded () in
  let up = ancestors events in
  let check_under span_name ancestor_name =
    let s = find_span span_name events in
    let anc = up s in
    Alcotest.(check bool)
      (Printf.sprintf "%s under %s (ancestors: %s)" span_name ancestor_name
         (String.concat " < " anc))
      true
      (List.mem ancestor_name anc)
  in
  let root = find_span "pipeline.run" events in
  Alcotest.(check (option int)) "pipeline.run is the root" None root.Obs.Export.parent;
  check_under "kernel.estimate" "pipeline.kernel";
  check_under "population.simulate" "kernel.estimate";
  check_under "qp.solve" "pipeline.solve";
  check_under "qp.solve" "pipeline.run";
  check_under "solver.constrained" "solver.solve_robust";
  check_under "solver.attempt" "pipeline.solve";
  (* metrics flowed alongside the spans *)
  let snap = Obs.Metrics.snapshot () in
  Alcotest.(check bool) "cells counter registered" true
    (List.exists
       (fun s -> String.equal s.Obs.Metrics.name "population.cells_simulated")
       snap);
  Alcotest.(check bool) "qp counter registered" true
    (List.exists (fun s -> String.equal s.Obs.Metrics.name "qp.solves") snap)

let test_pipeline_lambda_spans =
  with_clean_obs @@ fun () ->
  let sink, recorded = Obs.Export.memory () in
  Obs.Export.install sink;
  let times = Array.init 6 (fun i -> 30.0 *. float_of_int i) in
  let config =
    { (Deconv.Pipeline.default_config ~times) with
      Deconv.Pipeline.n_cells_kernel = 300;
      n_cells_data = 300;
      n_phi = 41;
      num_knots = 8;
      selection = `Gcv;
      seed = 12;
    }
  in
  let profile phi = 1.0 +. (0.5 *. Float.sin (2.0 *. Float.pi *. phi)) in
  let _run = Deconv.Pipeline.run config ~profile in
  let events = recorded () in
  let up = ancestors events in
  let candidate = find_span "lambda.candidate" events in
  Alcotest.(check bool) "lambda.candidate under lambda.select" true
    (List.mem "lambda.select" (up candidate));
  let select = find_span "lambda.select" events in
  Alcotest.(check bool) "lambda.select under pipeline.lambda" true
    (List.mem "pipeline.lambda" (up select));
  Alcotest.(check bool) "several candidates traced" true
    (List.length
       (List.filter
          (fun s -> String.equal s.Obs.Export.name "lambda.candidate")
          (spans events))
    > 1)

(* ---------------- concurrency ---------------- *)

(* The metric registries and the export sink are mutex-guarded; concurrent
   emission from pool workers must neither drop updates nor tear events,
   and worker-domain root spans carry a "domain" attribute so traces from
   a parallel section stay attributable. Concurrency comes from the pool
   API — raw Domain.spawn is off limits outside lib/parallel (rule R8). *)
let test_concurrent_emission =
  with_clean_obs @@ fun () ->
  let sink, recorded = Obs.Export.memory () in
  Obs.Export.install sink;
  Obs.Metrics.enable ();
  let n = 64 in
  let pool = Parallel.Pool.create ~domains:4 in
  Fun.protect
    ~finally:(fun () -> Parallel.Pool.shutdown pool)
    (fun () ->
      Parallel.Pool.parallel_for pool ~chunk:1 ~n (fun ~lo ~hi:_ ->
          Obs.Span.with_ "conc.task" (fun sp ->
              Obs.Span.set_int sp "index" lo;
              Obs.Metrics.incr "conc.tasks";
              Obs.Metrics.observe "conc.index" (float_of_int lo))));
  let task_spans =
    List.filter (fun s -> String.equal s.Obs.Export.name "conc.task") (spans (recorded ()))
  in
  Alcotest.(check int) "one span per task, none dropped" n (List.length task_spans);
  let ids = List.sort_uniq compare (List.map (fun s -> s.Obs.Export.id) task_spans) in
  Alcotest.(check int) "span ids unique across domains" n (List.length ids);
  List.iter
    (fun s ->
      Alcotest.(check (option int)) "task spans are roots" None s.Obs.Export.parent;
      match List.assoc_opt "domain" s.Obs.Export.attrs with
      | Some (Obs.Export.Int d) -> check_true "domain id non-negative" (d >= 0)
      | Some _ -> Alcotest.fail "domain attribute must be an Int"
      | None -> () (* chunks claimed by the submitting (main) domain are untagged *))
    task_spans;
  let field snap name =
    match List.assoc_opt name snap.Obs.Metrics.fields with
    | Some v -> v
    | None -> Alcotest.failf "metric %s has no field %s" snap.Obs.Metrics.name name
  in
  let by_name name =
    match
      List.find_opt (fun s -> String.equal s.Obs.Metrics.name name) (Obs.Metrics.snapshot ())
    with
    | Some s -> s
    | None -> Alcotest.failf "no metric named %s" name
  in
  Alcotest.(check (float 0.0)) "no increment lost" (float_of_int n)
    (field (by_name "conc.tasks") "value");
  Alcotest.(check (float 0.0)) "no observation lost" (float_of_int n)
    (field (by_name "conc.index") "count");
  Alcotest.(check (float 0.0)) "observations intact"
    (float_of_int (n * (n - 1) / 2))
    (field (by_name "conc.index") "sum")

let tests =
  [
    ( "obs-clock",
      [
        case "manual source" test_manual_clock;
        case "monotonic clamp" test_clock_monotonic_clamp;
        case "with_source restores" test_with_source_restores;
      ] );
    ( "obs-span",
      [
        case "nesting, order and timing" test_span_nesting;
        case "emits on exception" test_span_emits_on_exception;
        case "disabled is a no-op" test_span_disabled_is_noop;
      ] );
    ( "obs-metrics",
      [
        case "disabled is a no-op" test_metrics_disabled_noop;
        case "counter, gauge, histogram" test_metrics_aggregation;
        case "exact percentiles" test_metrics_percentiles;
        case "events round-trip" test_metrics_events_round_trip;
      ] );
    ( "obs-export",
      [
        case "string escaping" test_json_escaping;
        case "value types round-trip" test_json_value_types;
        case "rejects malformed lines" test_json_rejects_malformed;
        case "jsonl write and read back" test_read_jsonl;
        case "malformed line reported" test_read_jsonl_reports_line;
        case "top table aggregates by name" test_output_top_aggregates;
      ] );
    ( "obs-pipeline",
      [
        case "span hierarchy end to end" test_pipeline_span_hierarchy;
        case "lambda selection spans" test_pipeline_lambda_spans;
      ] );
    ("obs-concurrency", [ case "concurrent emission" test_concurrent_emission ]);
  ]
