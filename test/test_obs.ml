(* Observability layer: mock clock, span nesting, metric aggregation,
   JSONL round-trip, zero-cost disabled path, and an end-to-end pipeline
   smoke test asserting the span hierarchy. *)

open Testutil

(* Every test that installs a sink / enables metrics / touches the clock
   cleans up through this wrapper so a failure cannot poison later tests. *)
let with_clean_obs f () =
  Obs.Span.reset ();
  Obs.Metrics.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Export.uninstall ();
      Obs.Metrics.disable ();
      Obs.Metrics.reset ();
      Obs.Span.reset ();
      Obs.Clock.set_source Obs.Clock.wall)
    f

let span_of = function
  | Obs.Export.Span s -> s
  | Obs.Export.Metric m -> Alcotest.failf "expected a span, got metric %s" m.Obs.Export.metric_name
  | Obs.Export.Point p -> Alcotest.failf "expected a span, got point %s" p.Obs.Export.series
  | Obs.Export.Sample s -> Alcotest.failf "expected a span, got sample %s" s.Obs.Export.s_kind
  | Obs.Export.Diag d -> Alcotest.failf "expected a span, got diag %s" d.Obs.Export.d_stage

let spans events = List.filter_map (function Obs.Export.Span s -> Some s | _ -> None) events

let find_span name events =
  match List.find_opt (fun s -> String.equal s.Obs.Export.name name) (spans events) with
  | Some s -> s
  | None -> Alcotest.failf "no span named %s in trace" name

(* ---------------- clock ---------------- *)

let test_manual_clock () =
  let source, advance = Obs.Clock.manual ~start:10.0 () in
  Obs.Clock.with_source source (fun () ->
      Alcotest.(check (float 0.0)) "start" 10.0 (Obs.Clock.now ());
      advance 2.5;
      Alcotest.(check (float 0.0)) "advanced" 12.5 (Obs.Clock.now ()))

let test_clock_monotonic_clamp () =
  let t = ref 5.0 in
  Obs.Clock.with_source (fun () -> !t) (fun () ->
      Alcotest.(check (float 0.0)) "first read" 5.0 (Obs.Clock.now ());
      t := 3.0;
      (* the source stepped backwards; [now] must not *)
      Alcotest.(check (float 0.0)) "clamped" 5.0 (Obs.Clock.now ());
      t := 7.0;
      Alcotest.(check (float 0.0)) "resumes" 7.0 (Obs.Clock.now ()))

let test_with_source_restores () =
  let source, _ = Obs.Clock.manual ~start:42.0 () in
  let before = Obs.Clock.now () in
  (try Obs.Clock.with_source source (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check bool) "wall clock restored after exception" true (Obs.Clock.now () >= before)

(* ---------------- spans ---------------- *)

let test_span_nesting =
  with_clean_obs @@ fun () ->
  let source, advance = Obs.Clock.manual () in
  let sink, recorded = Obs.Export.memory () in
  Obs.Export.install sink;
  Obs.Clock.with_source source (fun () ->
      Obs.Span.with_ "outer" (fun outer ->
          Obs.Span.set_int outer "k" 1;
          advance 1.0;
          Obs.Span.with_ "first" (fun _ -> advance 0.25);
          Obs.Span.with_ "second" (fun sp ->
              Obs.Span.set_str sp "tag" "x";
              advance 0.5)));
  match recorded () with
  | [ first; second; outer ] ->
    let first = span_of first and second = span_of second and outer = span_of outer in
    Alcotest.(check string) "close order: first child" "first" first.Obs.Export.name;
    Alcotest.(check string) "close order: second child" "second" second.Obs.Export.name;
    Alcotest.(check string) "close order: outer last" "outer" outer.Obs.Export.name;
    Alcotest.(check (option int)) "outer is root" None outer.Obs.Export.parent;
    Alcotest.(check (option int)) "first under outer" (Some outer.Obs.Export.id)
      first.Obs.Export.parent;
    Alcotest.(check (option int)) "second under outer" (Some outer.Obs.Export.id)
      second.Obs.Export.parent;
    Alcotest.(check (float 0.0)) "first duration" 0.25
      (first.Obs.Export.stop_s -. first.Obs.Export.start_s);
    Alcotest.(check (float 0.0)) "second duration" 0.5
      (second.Obs.Export.stop_s -. second.Obs.Export.start_s);
    Alcotest.(check (float 0.0)) "outer duration" 1.75
      (outer.Obs.Export.stop_s -. outer.Obs.Export.start_s);
    Alcotest.(check bool) "outer kept its attr" true
      (List.mem_assoc "k" outer.Obs.Export.attrs)
  | evs -> Alcotest.failf "expected 3 spans, got %d events" (List.length evs)

let test_span_emits_on_exception =
  with_clean_obs @@ fun () ->
  let sink, recorded = Obs.Export.memory () in
  Obs.Export.install sink;
  (try Obs.Span.with_ "doomed" (fun _ -> failwith "boom") with Failure _ -> ());
  Alcotest.(check int) "span still emitted" 1 (List.length (spans (recorded ())));
  (* the stack must be clean: a fresh span is a root, not a child of [doomed] *)
  Obs.Span.with_ "after" (fun _ -> ());
  let after = find_span "after" (recorded ()) in
  Alcotest.(check (option int)) "stack popped on exception" None after.Obs.Export.parent

let test_span_disabled_is_noop =
  with_clean_obs @@ fun () ->
  Alcotest.(check bool) "tracing off" false (Obs.Span.enabled ());
  let r =
    Obs.Span.with_ "invisible" (fun sp ->
        Obs.Span.set_float sp "x" 1.0;
        17)
  in
  Alcotest.(check int) "body result passes through" 17 r;
  (* installing a sink afterwards must see nothing retroactively *)
  let sink, recorded = Obs.Export.memory () in
  Obs.Export.install sink;
  Alcotest.(check int) "no events recorded while disabled" 0 (List.length (recorded ()))

(* ---------------- metrics ---------------- *)

let test_metrics_disabled_noop =
  with_clean_obs @@ fun () ->
  Obs.Metrics.incr "c";
  Obs.Metrics.set "g" 1.0;
  Obs.Metrics.observe "h" 2.0;
  Alcotest.(check int) "nothing registered while disabled" 0
    (List.length (Obs.Metrics.snapshot ()))

let test_metrics_aggregation =
  with_clean_obs @@ fun () ->
  Obs.Metrics.enable ();
  Obs.Metrics.incr "solves";
  Obs.Metrics.incr ~by:3.0 "solves";
  Obs.Metrics.set "condition" 10.0;
  Obs.Metrics.set "condition" 4.0;
  Obs.Metrics.observe "iters" 2.0;
  Obs.Metrics.observe "iters" 6.0;
  Obs.Metrics.observe "iters" 4.0;
  let field snap name =
    match List.assoc_opt name snap.Obs.Metrics.fields with
    | Some v -> v
    | None -> Alcotest.failf "metric %s has no field %s" snap.Obs.Metrics.name name
  in
  let by_name name =
    match
      List.find_opt (fun s -> String.equal s.Obs.Metrics.name name) (Obs.Metrics.snapshot ())
    with
    | Some s -> s
    | None -> Alcotest.failf "no metric named %s" name
  in
  Alcotest.(check (float 0.0)) "counter accumulates" 4.0 (field (by_name "solves") "value");
  Alcotest.(check (float 0.0)) "gauge keeps latest" 4.0 (field (by_name "condition") "value");
  let h = by_name "iters" in
  Alcotest.(check (float 0.0)) "histogram count" 3.0 (field h "count");
  Alcotest.(check (float 0.0)) "histogram sum" 12.0 (field h "sum");
  Alcotest.(check (float 0.0)) "histogram mean" 4.0 (field h "mean");
  Alcotest.(check (float 0.0)) "histogram min" 2.0 (field h "min");
  Alcotest.(check (float 0.0)) "histogram max" 6.0 (field h "max");
  Alcotest.(check (float 0.0)) "histogram p50" 4.0 (field h "p50")

let test_metrics_percentiles =
  with_clean_obs @@ fun () ->
  Obs.Metrics.enable ();
  (* 1..100 in shuffled-ish order: percentiles must sort, not trust
     insertion order. Nearest-rank on n=100: p50 -> index 50 -> 51,
     p90 -> index 89 -> 90, p99 -> index 98 -> 99. *)
  for i = 0 to 99 do
    Obs.Metrics.observe "lat" (float_of_int (((i * 37) mod 100) + 1))
  done;
  let snap =
    match
      List.find_opt (fun s -> String.equal s.Obs.Metrics.name "lat") (Obs.Metrics.snapshot ())
    with
    | Some s -> s
    | None -> Alcotest.fail "histogram not registered"
  in
  let field name =
    match List.assoc_opt name snap.Obs.Metrics.fields with
    | Some v -> v
    | None -> Alcotest.failf "no field %s" name
  in
  Alcotest.(check (float 0.0)) "count" 100.0 (field "count");
  Alcotest.(check (float 0.0)) "p50" 51.0 (field "p50");
  Alcotest.(check (float 0.0)) "p90" 90.0 (field "p90");
  Alcotest.(check (float 0.0)) "p99" 99.0 (field "p99");
  Alcotest.(check (float 0.0)) "min still exact" 1.0 (field "min");
  Alcotest.(check (float 0.0)) "max still exact" 100.0 (field "max")

let test_metrics_events_round_trip =
  with_clean_obs @@ fun () ->
  Obs.Metrics.enable ();
  Obs.Metrics.incr ~by:2.0 "qp.solves";
  Obs.Metrics.observe "qp.iters" 5.0;
  List.iter
    (fun ev ->
      let line = Obs.Export.to_json ev in
      match Obs.Export.of_json line with
      | Ok ev' ->
        Alcotest.(check string) ("round-trip " ^ line) line (Obs.Export.to_json ev')
      | Error msg -> Alcotest.failf "could not parse %s: %s" line msg)
    (Obs.Metrics.events ())

(* ---------------- export ---------------- *)

let nasty = "quote\" backslash\\ newline\n tab\t ctrl\x02 del\x7f utf8 \xc3\xa9"

let test_json_escaping () =
  let ev =
    Obs.Export.Span
      { Obs.Export.id = 1; parent = None; name = nasty; start_s = 0.0; stop_s = 1.0;
        attrs = [ ("s", Obs.Export.Str nasty) ] }
  in
  let line = Obs.Export.to_json ev in
  Alcotest.(check bool) "single line" false (String.contains line '\n');
  match Obs.Export.of_json line with
  | Ok (Obs.Export.Span s) ->
    Alcotest.(check string) "name survives escaping" nasty s.Obs.Export.name;
    (match List.assoc_opt "s" s.Obs.Export.attrs with
    | Some (Obs.Export.Str v) -> Alcotest.(check string) "attr survives escaping" nasty v
    | _ -> Alcotest.fail "attr s missing or wrong type")
  | Ok _ -> Alcotest.fail "parsed to a metric"
  | Error msg -> Alcotest.failf "parse failed: %s" msg

let test_json_value_types () =
  let ev =
    Obs.Export.Span
      { Obs.Export.id = 3; parent = Some 2; name = "typed"; start_s = 0.5; stop_s = 0.75;
        attrs =
          [ ("f", Obs.Export.Float 1.25); ("neg", Obs.Export.Float (-0.001));
            ("i", Obs.Export.Int (-7)); ("b", Obs.Export.Bool true);
            ("s", Obs.Export.Str "plain") ] }
  in
  let line = Obs.Export.to_json ev in
  match Obs.Export.of_json line with
  | Ok ev' ->
    Alcotest.(check string) "fixed point" line (Obs.Export.to_json ev');
    let s = span_of ev' in
    Alcotest.(check (option int)) "parent" (Some 2) s.Obs.Export.parent;
    (match List.assoc_opt "i" s.Obs.Export.attrs with
    | Some (Obs.Export.Int -7) -> ()
    | _ -> Alcotest.fail "Int attr did not round-trip as Int");
    (match List.assoc_opt "f" s.Obs.Export.attrs with
    | Some (Obs.Export.Float v) -> Alcotest.(check (float 0.0)) "float value" 1.25 v
    | _ -> Alcotest.fail "Float attr did not round-trip as Float")
  | Error msg -> Alcotest.failf "parse failed: %s" msg

let test_json_rejects_malformed () =
  List.iter
    (fun line ->
      match Obs.Export.of_json line with
      | Ok _ -> Alcotest.failf "accepted malformed input: %s" line
      | Error _ -> ())
    [
      ""; "{"; "{\"ev\":\"span\"}"; "not json at all";
      "{\"ev\":\"span\",\"id\":1,\"name\":\"x\",\"start\":0,\"stop\":\"oops\",\"parent\":null,\"attrs\":{}}";
      "{\"ev\":\"mystery\",\"id\":1}";
    ]

let test_read_jsonl =
  with_clean_obs @@ fun () ->
  let path = Filename.temp_file "obs_test" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let source, advance = Obs.Clock.manual () in
      let oc = open_out path in
      Obs.Export.install (Obs.Export.jsonl oc);
      Obs.Metrics.enable ();
      Obs.Clock.with_source source (fun () ->
          Obs.Span.with_ "root" (fun _ ->
              advance 1.0;
              Obs.Span.with_ "leaf" (fun _ -> advance 0.5);
              Obs.Metrics.incr "n"));
      List.iter Obs.Export.emit (Obs.Metrics.events ());
      Obs.Export.uninstall ();
      close_out oc;
      let ic = open_in path in
      let events =
        Fun.protect ~finally:(fun () -> close_in ic) (fun () -> Obs.Export.read_jsonl ic)
      in
      match events with
      | Error msg -> Alcotest.failf "read_jsonl failed: %s" msg
      | Ok events ->
        Alcotest.(check int) "two spans and one metric" 3 (List.length events);
        let root = find_span "root" events and leaf = find_span "leaf" events in
        Alcotest.(check (option int)) "leaf under root" (Some root.Obs.Export.id)
          leaf.Obs.Export.parent;
        (match List.rev events with
        | Obs.Export.Metric m :: _ ->
          Alcotest.(check string) "metric name" "n" m.Obs.Export.metric_name
        | _ -> Alcotest.fail "metrics should follow spans in the stream"))

let test_read_jsonl_reports_line =
  with_clean_obs @@ fun () ->
  let path = Filename.temp_file "obs_test" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc
        "{\"ev\":\"metric\",\"name\":\"ok\",\"kind\":\"counter\",\"fields\":{\"value\":1.0}}\n\n{broken\n";
      close_out oc;
      let ic = open_in path in
      let r = Fun.protect ~finally:(fun () -> close_in ic) (fun () -> Obs.Export.read_jsonl ic) in
      match r with
      | Ok _ -> Alcotest.fail "accepted a malformed line"
      | Error msg ->
        Alcotest.(check bool)
          (Printf.sprintf "error names line 3 (got %S)" msg)
          true
          (String.length msg >= 6))

(* ---------------- pipeline smoke test ---------------- *)

let ancestors events =
  let by_id = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace by_id s.Obs.Export.id s) (spans events);
  fun (s : Obs.Export.span) ->
    let rec up acc = function
      | None -> List.rev acc
      | Some id -> (
        match Hashtbl.find_opt by_id id with
        | None -> List.rev acc
        | Some p -> up (p.Obs.Export.name :: acc) p.Obs.Export.parent)
    in
    up [] s.Obs.Export.parent

let contains haystack needle =
  let lh = String.length haystack and ln = String.length needle in
  let rec go i =
    i + ln <= lh && (String.equal (String.sub haystack i ln) needle || go (i + 1))
  in
  go 0

let test_output_top_aggregates =
  with_clean_obs @@ fun () ->
  let source, advance = Obs.Clock.manual () in
  Obs.Clock.with_source source @@ fun () ->
  let sink, recorded = Obs.Export.memory () in
  Obs.Export.install sink;
  Obs.Span.with_ "outer" (fun _ ->
      advance 2.0;
      Obs.Span.with_ "inner" (fun _ -> advance 1.0));
  let events = recorded () in
  let render top =
    let path = Filename.temp_file "obs_top" ".txt" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        Out_channel.with_open_text path (fun oc -> Obs.Export.output_top oc ~top events);
        In_channel.with_open_text path In_channel.input_all)
  in
  let full = render 0 in
  check_true "outer listed" (contains full "outer");
  check_true "inner listed" (contains full "inner");
  check_true "two names counted" (contains full "(2 of 2 names)");
  (* outer ran 3s total; inner is charged against its self time, so the
     sort by total puts outer first. top:1 must then drop inner. *)
  let top1 = render 1 in
  check_true "outer survives the cut" (contains top1 "outer");
  check_true "inner cut by top 1" (not (contains top1 "inner"))

let test_pipeline_span_hierarchy =
  with_clean_obs @@ fun () ->
  let sink, recorded = Obs.Export.memory () in
  Obs.Export.install sink;
  Obs.Metrics.enable ();
  let times = Array.init 6 (fun i -> 30.0 *. float_of_int i) in
  let config =
    { (Deconv.Pipeline.default_config ~times) with
      Deconv.Pipeline.n_cells_kernel = 300;
      n_cells_data = 300;
      n_phi = 41;
      num_knots = 8;
      selection = `Fixed 1e-4;
      seed = 11;
    }
  in
  let profile phi = 1.0 +. (0.5 *. Float.sin (2.0 *. Float.pi *. phi)) in
  let _run = Deconv.Pipeline.run config ~profile in
  let events = recorded () in
  let up = ancestors events in
  let check_under span_name ancestor_name =
    let s = find_span span_name events in
    let anc = up s in
    Alcotest.(check bool)
      (Printf.sprintf "%s under %s (ancestors: %s)" span_name ancestor_name
         (String.concat " < " anc))
      true
      (List.mem ancestor_name anc)
  in
  let root = find_span "pipeline.run" events in
  Alcotest.(check (option int)) "pipeline.run is the root" None root.Obs.Export.parent;
  check_under "kernel.estimate" "pipeline.kernel";
  check_under "population.simulate" "kernel.estimate";
  check_under "qp.solve" "pipeline.solve";
  check_under "qp.solve" "pipeline.run";
  check_under "solver.constrained" "solver.solve_robust";
  check_under "solver.attempt" "pipeline.solve";
  (* metrics flowed alongside the spans *)
  let snap = Obs.Metrics.snapshot () in
  Alcotest.(check bool) "cells counter registered" true
    (List.exists
       (fun s -> String.equal s.Obs.Metrics.name "population.cells_simulated")
       snap);
  Alcotest.(check bool) "qp counter registered" true
    (List.exists (fun s -> String.equal s.Obs.Metrics.name "qp.solves") snap)

let test_pipeline_lambda_spans =
  with_clean_obs @@ fun () ->
  let sink, recorded = Obs.Export.memory () in
  Obs.Export.install sink;
  let times = Array.init 6 (fun i -> 30.0 *. float_of_int i) in
  let config =
    { (Deconv.Pipeline.default_config ~times) with
      Deconv.Pipeline.n_cells_kernel = 300;
      n_cells_data = 300;
      n_phi = 41;
      num_knots = 8;
      selection = `Gcv;
      seed = 12;
    }
  in
  let profile phi = 1.0 +. (0.5 *. Float.sin (2.0 *. Float.pi *. phi)) in
  let _run = Deconv.Pipeline.run config ~profile in
  let events = recorded () in
  let up = ancestors events in
  let candidate = find_span "lambda.candidate" events in
  Alcotest.(check bool) "lambda.candidate under lambda.select" true
    (List.mem "lambda.select" (up candidate));
  let select = find_span "lambda.select" events in
  Alcotest.(check bool) "lambda.select under pipeline.lambda" true
    (List.mem "pipeline.lambda" (up select));
  Alcotest.(check bool) "several candidates traced" true
    (List.length
       (List.filter
          (fun s -> String.equal s.Obs.Export.name "lambda.candidate")
          (spans events))
    > 1)

(* ---------------- concurrency ---------------- *)

(* The metric registries and the export sink are mutex-guarded; concurrent
   emission from pool workers must neither drop updates nor tear events,
   and worker-domain root spans carry a "domain" attribute so traces from
   a parallel section stay attributable. Concurrency comes from the pool
   API — raw Domain.spawn is off limits outside lib/parallel (rule R8). *)
let test_concurrent_emission =
  with_clean_obs @@ fun () ->
  let sink, recorded = Obs.Export.memory () in
  Obs.Export.install sink;
  Obs.Metrics.enable ();
  let n = 64 in
  let pool = Parallel.Pool.create ~domains:4 in
  Fun.protect
    ~finally:(fun () -> Parallel.Pool.shutdown pool)
    (fun () ->
      Parallel.Pool.parallel_for pool ~chunk:1 ~n (fun ~lo ~hi:_ ->
          Obs.Span.with_ "conc.task" (fun sp ->
              Obs.Span.set_int sp "index" lo;
              Obs.Metrics.incr "conc.tasks";
              Obs.Metrics.observe "conc.index" (float_of_int lo))));
  let task_spans =
    List.filter (fun s -> String.equal s.Obs.Export.name "conc.task") (spans (recorded ()))
  in
  Alcotest.(check int) "one span per task, none dropped" n (List.length task_spans);
  let ids = List.sort_uniq compare (List.map (fun s -> s.Obs.Export.id) task_spans) in
  Alcotest.(check int) "span ids unique across domains" n (List.length ids);
  List.iter
    (fun s ->
      Alcotest.(check (option int)) "task spans are roots" None s.Obs.Export.parent;
      match List.assoc_opt "domain" s.Obs.Export.attrs with
      | Some (Obs.Export.Int d) -> check_true "domain id non-negative" (d >= 0)
      | Some _ -> Alcotest.fail "domain attribute must be an Int"
      | None -> () (* chunks claimed by the submitting (main) domain are untagged *))
    task_spans;
  let field snap name =
    match List.assoc_opt name snap.Obs.Metrics.fields with
    | Some v -> v
    | None -> Alcotest.failf "metric %s has no field %s" snap.Obs.Metrics.name name
  in
  let by_name name =
    match
      List.find_opt (fun s -> String.equal s.Obs.Metrics.name name) (Obs.Metrics.snapshot ())
    with
    | Some s -> s
    | None -> Alcotest.failf "no metric named %s" name
  in
  Alcotest.(check (float 0.0)) "no increment lost" (float_of_int n)
    (field (by_name "conc.tasks") "value");
  Alcotest.(check (float 0.0)) "no observation lost" (float_of_int n)
    (field (by_name "conc.index") "count");
  Alcotest.(check (float 0.0)) "observations intact"
    (float_of_int (n * (n - 1) / 2))
    (field (by_name "conc.index") "sum")

(* ---------------- telemetry: resource sampler ---------------- *)

let test_ticker_intervals () =
  let t = Obs.Resource.ticker ~period:1.0 ~now:0.0 in
  check_true "not due before the first deadline" (not (Obs.Resource.due t ~now:0.5));
  check_true "due at the deadline" (Obs.Resource.due t ~now:1.0);
  check_true "not due twice for one deadline" (not (Obs.Resource.due t ~now:1.0));
  check_true "due after the next period" (Obs.Resource.due t ~now:2.25);
  (* A stall over several periods yields one catch-up tick, not a burst. *)
  check_true "stall: one catch-up tick" (Obs.Resource.due t ~now:7.9);
  check_true "stall: no burst" (not (Obs.Resource.due t ~now:7.95));
  check_true "deadline re-anchored past the stall" (Obs.Resource.due t ~now:8.1)

let test_ticker_rejects_bad_period () =
  List.iter
    (fun period ->
      match Obs.Resource.ticker ~period ~now:0.0 with
      | _ -> Alcotest.failf "accepted period %f" period
      | exception Invalid_argument _ -> ())
    [ 0.0; -1.0; Float.nan; Float.infinity ]

let test_resource_sample_round_trip =
  with_clean_obs @@ fun () ->
  let sink, recorded = Obs.Export.memory () in
  Obs.Export.install sink;
  let source, advance = Obs.Clock.manual ~start:5.0 () in
  Obs.Clock.with_source source (fun () ->
      Obs.Resource.sample ();
      advance 2.0;
      Obs.Resource.sample ());
  Obs.Export.uninstall ();
  let samples =
    List.filter_map (function Obs.Export.Sample s -> Some s | _ -> None) (recorded ())
  in
  (match samples with
  | [ a; b ] ->
    Alcotest.(check string) "kind" "resource" a.Obs.Export.s_kind;
    Alcotest.(check (float 0.0)) "first sample at the mock clock" 5.0 a.Obs.Export.t_s;
    Alcotest.(check (float 0.0)) "second sample after advance" 7.0 b.Obs.Export.t_s;
    List.iter
      (fun field ->
        check_true (field ^ " present") (List.mem_assoc field a.Obs.Export.values))
      [ "minor_words"; "major_words"; "heap_words"; "minor_collections" ]
  | ss -> Alcotest.failf "expected two samples, got %d" (List.length ss));
  (* JSONL fixed point: to_json . of_json . to_json = to_json. *)
  List.iter
    (fun s ->
      let line = Obs.Export.to_json (Obs.Export.Sample s) in
      match Obs.Export.of_json line with
      | Ok ev' -> Alcotest.(check string) "fixed point" line (Obs.Export.to_json ev')
      | Error msg -> Alcotest.failf "could not parse %s: %s" line msg)
    samples

let test_resource_sample_disabled_is_noop =
  with_clean_obs @@ fun () ->
  (* No sink installed: must not raise, must not emit. *)
  Obs.Resource.sample ();
  let sink, recorded = Obs.Export.memory () in
  Obs.Export.install sink;
  Obs.Export.uninstall ();
  Alcotest.(check int) "nothing emitted" 0 (List.length (recorded ()))

(* ---------------- telemetry: progress ---------------- *)

let with_manual_clock ?(start = 0.0) f =
  let source, advance = Obs.Clock.manual ~start () in
  Obs.Clock.with_source source (fun () -> f advance)

let test_progress_zero_done =
  with_clean_obs @@ fun () ->
  with_manual_clock @@ fun advance ->
  let p = Obs.Progress.create ~total:10 () in
  advance 3.0;
  let s = Obs.Progress.snapshot p in
  Alcotest.(check int) "done" 0 s.Obs.Progress.s_done;
  Alcotest.(check (float 0.0)) "rate is zero before any completion" 0.0
    s.Obs.Progress.s_rate;
  check_true "eta unknown" (Float.is_nan s.Obs.Progress.s_eta_s);
  check_true "renders the unknown eta" (String.length (Obs.Progress.render s) > 0)

let test_progress_all_failed =
  with_clean_obs @@ fun () ->
  with_manual_clock @@ fun advance ->
  let p = Obs.Progress.create ~total:3 () in
  advance 1.0;
  Obs.Progress.record p ~cls:"non_finite" ~ok:false ();
  Obs.Progress.record p ~cls:"non_finite" ~ok:false ();
  Obs.Progress.record p ~cls:"qp_stalled" ~ok:false ();
  let s = Obs.Progress.snapshot p in
  Alcotest.(check int) "all done" 3 s.Obs.Progress.s_done;
  Alcotest.(check int) "none ok" 0 s.Obs.Progress.s_ok;
  Alcotest.(check int) "all failed" 3 s.Obs.Progress.s_failed;
  Alcotest.(check (list (pair string int))) "classes sorted and tallied"
    [ ("non_finite", 2); ("qp_stalled", 1) ]
    s.Obs.Progress.s_classes;
  Alcotest.(check (float 0.0)) "eta is zero once everything completed" 0.0
    s.Obs.Progress.s_eta_s;
  let line = Obs.Progress.render s in
  check_true "render names the failure class" (contains line "non_finite:2")

let test_progress_window_rate =
  with_clean_obs @@ fun () ->
  with_manual_clock @@ fun advance ->
  let p = Obs.Progress.create ~window_s:10.0 ~total:8 () in
  advance 1.0;
  Obs.Progress.record p ~ok:true ();
  advance 1.0;
  Obs.Progress.record p ~ok:true ();
  advance 1.0;
  Obs.Progress.record p ~ok:true ();
  (* Three completions inside the window; elapsed 3 s < window 10 s, so
     the rate is count over elapsed. *)
  let s = Obs.Progress.snapshot p in
  Alcotest.(check (float 1e-9)) "windowed rate" 1.0 s.Obs.Progress.s_rate;
  Alcotest.(check (float 1e-9)) "eta = remaining / rate" 5.0 s.Obs.Progress.s_eta_s

let test_progress_window_fallback =
  with_clean_obs @@ fun () ->
  with_manual_clock @@ fun advance ->
  (* Completions slower than the window: the window is empty at snapshot
     time, so the rate degrades to the overall average instead of 0. *)
  let p = Obs.Progress.create ~window_s:0.5 ~total:4 () in
  advance 2.0;
  Obs.Progress.record p ~ok:true ();
  advance 2.0;
  Obs.Progress.record p ~ok:true ();
  advance 1.0;
  let s = Obs.Progress.snapshot p in
  Alcotest.(check (float 1e-9)) "overall-average fallback" 0.4 s.Obs.Progress.s_rate;
  Alcotest.(check (float 1e-9)) "eta from the fallback rate" 5.0 s.Obs.Progress.s_eta_s

let test_progress_replayed =
  with_clean_obs @@ fun () ->
  with_manual_clock @@ fun advance ->
  let p = Obs.Progress.create ~total:5 () in
  Obs.Progress.record_replayed p 3;
  advance 1.0;
  let s = Obs.Progress.snapshot p in
  Alcotest.(check int) "replays count as done" 3 s.Obs.Progress.s_done;
  Alcotest.(check int) "replays count as ok" 3 s.Obs.Progress.s_ok;
  Alcotest.(check int) "replays are tracked apart" 3 s.Obs.Progress.s_replayed;
  (* Replays bypass the sliding window but still feed the overall
     average (the documented degradation, visible here as 3/1s). *)
  Alcotest.(check (float 1e-9)) "window ignores replays" 3.0 s.Obs.Progress.s_rate

let test_progress_observer_rate_limit =
  with_clean_obs @@ fun () ->
  with_manual_clock @@ fun advance ->
  let p = Obs.Progress.create ~total:100 () in
  let calls = ref 0 in
  Obs.Progress.observe ~min_interval_s:1.0 p (fun _ -> incr calls);
  Obs.Progress.record p ~ok:true ();
  Obs.Progress.record p ~ok:true ();
  Obs.Progress.record p ~ok:true ();
  Alcotest.(check int) "same-instant completions coalesce" 1 !calls;
  advance 1.5;
  Obs.Progress.record p ~ok:true ();
  Alcotest.(check int) "interval elapsed: fires again" 2 !calls;
  Obs.Progress.finish p;
  Alcotest.(check int) "finish always fires" 3 !calls

let test_progress_record_into_none () =
  (* The disabled path must cost a branch and nothing else. *)
  Obs.Progress.record_into None ~ok:true ();
  Obs.Progress.record_into None ~cls:"non_finite" ~ok:false ()

let test_progress_json =
  with_clean_obs @@ fun () ->
  with_manual_clock @@ fun advance ->
  let p = Obs.Progress.create ~total:2 () in
  advance 1.0;
  Obs.Progress.record p ~cls:"qp_stalled" ~ok:false ();
  let json = Obs.Progress.to_json (Obs.Progress.snapshot p) in
  List.iter
    (fun needle -> check_true ("json has " ^ needle) (contains json needle))
    [ "\"total\":2"; "\"done\":1"; "\"failed\":1"; "\"qp_stalled\":1"; "\"elapsed_s\":1" ]

(* ---------------- telemetry: utilization ---------------- *)

let chunk_sample ~domain ~lo ~hi ~start ~stop =
  Obs.Export.Sample
    {
      Obs.Export.s_kind = "chunk";
      t_s = stop;
      values =
        [
          ("domain", float_of_int domain); ("lo", float_of_int lo);
          ("hi", float_of_int hi); ("start", start); ("stop", stop);
        ];
    }

let test_utilization_synthetic () =
  (* Two domains over a 2 s fan-out: domain 0 busy 1.5 s in two chunks,
     domain 1 busy 2.0 s in one chunk. *)
  let events =
    [
      chunk_sample ~domain:0 ~lo:0 ~hi:4 ~start:0.0 ~stop:1.0;
      chunk_sample ~domain:0 ~lo:4 ~hi:8 ~start:1.2 ~stop:1.7;
      chunk_sample ~domain:1 ~lo:8 ~hi:16 ~start:0.0 ~stop:2.0;
    ]
  in
  match Obs.Utilization.of_events events with
  | None -> Alcotest.fail "expected a report"
  | Some r ->
    Alcotest.(check int) "chunk count" 3 r.Obs.Utilization.chunk_count;
    Alcotest.(check (float 1e-9)) "span" 2.0 r.Obs.Utilization.span_s;
    (match r.Obs.Utilization.domains with
    | [ d0; d1 ] ->
      Alcotest.(check int) "sorted by domain id" 0 d0.Obs.Utilization.domain;
      Alcotest.(check int) "items = sum hi-lo" 8 d0.Obs.Utilization.items;
      Alcotest.(check (float 1e-9)) "domain 0 busy" 1.5 d0.Obs.Utilization.busy_s;
      Alcotest.(check (float 1e-9)) "domain 0 fraction" 0.75
        d0.Obs.Utilization.busy_fraction;
      Alcotest.(check (float 1e-9)) "domain 1 fraction" 1.0
        d1.Obs.Utilization.busy_fraction;
      List.iter
        (fun (d : Obs.Utilization.domain_stat) ->
          check_true "fraction in (0,1]"
            (d.Obs.Utilization.busy_fraction > 0.0
            && d.Obs.Utilization.busy_fraction <= 1.0))
        r.Obs.Utilization.domains
    | ds -> Alcotest.failf "expected two domains, got %d" (List.length ds));
    (* Chunk walls: 1.0, 0.5, 2.0 -> mean 7/6, max 2.0. *)
    Alcotest.(check (float 1e-9)) "imbalance = max/mean" (2.0 /. (3.5 /. 3.0))
      r.Obs.Utilization.imbalance;
    check_true "imbalance finite" (Float.is_finite r.Obs.Utilization.imbalance)

let test_utilization_edges () =
  check_true "no chunks -> no report" (Option.is_none (Obs.Utilization.of_events []));
  (* Malformed and non-chunk samples are ignored, not fatal. *)
  let noise =
    [
      Obs.Export.Sample
        { Obs.Export.s_kind = "resource"; t_s = 1.0; values = [ ("heap_words", 1e6) ] };
      Obs.Export.Sample { Obs.Export.s_kind = "chunk"; t_s = 1.0; values = [] };
    ]
  in
  check_true "noise alone -> no report" (Option.is_none (Obs.Utilization.of_events noise));
  (* A zero-width span (one instantaneous chunk) pins the fraction at 1. *)
  match
    Obs.Utilization.of_events [ chunk_sample ~domain:2 ~lo:0 ~hi:1 ~start:5.0 ~stop:5.0 ]
  with
  | Some { Obs.Utilization.domains = [ d ]; imbalance; _ } ->
    Alcotest.(check (float 0.0)) "zero-span fraction" 1.0 d.Obs.Utilization.busy_fraction;
    Alcotest.(check (float 0.0)) "zero-span imbalance" 1.0 imbalance
  | _ -> Alcotest.fail "expected a single-domain report"

(* ---------------- telemetry: chrome export ---------------- *)

let chrome_string events =
  let path = Filename.temp_file "obs_chrome" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      Obs.Chrome.output oc events;
      close_out oc;
      In_channel.with_open_text path In_channel.input_all)

let test_chrome_export_golden () =
  let events =
    [
      Obs.Export.Span
        { Obs.Export.id = 1; parent = None; name = "batch"; start_s = 10.0;
          stop_s = 12.0; attrs = [] };
      Obs.Export.Span
        { Obs.Export.id = 2; parent = Some 1; name = "solve"; start_s = 10.5;
          stop_s = 11.0; attrs = [ ("domain", Obs.Export.Int 3) ] };
      chunk_sample ~domain:3 ~lo:0 ~hi:32 ~start:10.5 ~stop:11.0;
      Obs.Export.Sample
        { Obs.Export.s_kind = "resource"; t_s = 11.0;
          values = [ ("heap_words", 4096.0) ] };
      Obs.Export.Point
        { Obs.Export.series = "qp.iteration"; span_id = Some 2; iter = 1;
          values = [ ("kkt_residual", 0.5) ] };
      Obs.Export.Metric
        { Obs.Export.metric_name = "skipped"; kind = "counter";
          fields = [ ("value", 1.0) ] };
    ]
  in
  let doc = chrome_string events in
  check_true "document shape" (contains doc "{\"traceEvents\":[");
  (* The root span starts at the stream's earliest timestamp: ts 0. *)
  check_true "root span is a complete event at ts 0"
    (contains doc
       "{\"name\":\"batch\",\"ph\":\"X\",\"ts\":0.0,\"dur\":2000000.0,\"pid\":1,\"tid\":0");
  (* The child span lands on its domain's lane, 0.5 s = 500000 us in. *)
  check_true "child span on the domain lane"
    (contains doc
       "{\"name\":\"solve\",\"ph\":\"X\",\"ts\":500000.0,\"dur\":500000.0,\"pid\":1,\"tid\":3");
  check_true "chunk renders as a complete event on its domain tid"
    (contains doc
       "{\"name\":\"chunk [0,32)\",\"ph\":\"X\",\"ts\":500000.0,\"dur\":500000.0,\"pid\":1,\"tid\":3");
  check_true "resource field becomes a counter track"
    (contains doc
       "{\"name\":\"resource.heap_words\",\"ph\":\"C\",\"ts\":1000000.0,\"pid\":1,\"args\":{\"heap_words\":4096.0}");
  check_true "point becomes an instant at its owning span"
    (contains doc
       "{\"name\":\"qp.iteration #1\",\"ph\":\"i\",\"ts\":500000.0,\"pid\":1,\"tid\":3,\"s\":\"t\"");
  check_true "metrics are skipped" (not (contains doc "skipped"))

let test_chrome_export_empty () =
  Alcotest.(check string) "empty stream is a valid document" "{\"traceEvents\":[\n\n]}\n"
    (chrome_string [])

let tests =
  [
    ( "obs-clock",
      [
        case "manual source" test_manual_clock;
        case "monotonic clamp" test_clock_monotonic_clamp;
        case "with_source restores" test_with_source_restores;
      ] );
    ( "obs-span",
      [
        case "nesting, order and timing" test_span_nesting;
        case "emits on exception" test_span_emits_on_exception;
        case "disabled is a no-op" test_span_disabled_is_noop;
      ] );
    ( "obs-metrics",
      [
        case "disabled is a no-op" test_metrics_disabled_noop;
        case "counter, gauge, histogram" test_metrics_aggregation;
        case "exact percentiles" test_metrics_percentiles;
        case "events round-trip" test_metrics_events_round_trip;
      ] );
    ( "obs-export",
      [
        case "string escaping" test_json_escaping;
        case "value types round-trip" test_json_value_types;
        case "rejects malformed lines" test_json_rejects_malformed;
        case "jsonl write and read back" test_read_jsonl;
        case "malformed line reported" test_read_jsonl_reports_line;
        case "top table aggregates by name" test_output_top_aggregates;
      ] );
    ( "obs-pipeline",
      [
        case "span hierarchy end to end" test_pipeline_span_hierarchy;
        case "lambda selection spans" test_pipeline_lambda_spans;
      ] );
    ("obs-concurrency", [ case "concurrent emission" test_concurrent_emission ]);
    ( "telemetry-sampler",
      [
        case "ticker interval logic" test_ticker_intervals;
        case "ticker rejects bad periods" test_ticker_rejects_bad_period;
        case "resource sample jsonl round-trip" test_resource_sample_round_trip;
        case "disabled sample is a no-op" test_resource_sample_disabled_is_noop;
      ] );
    ( "telemetry-progress",
      [
        case "zero done: unknown eta" test_progress_zero_done;
        case "all failed: classes tallied" test_progress_all_failed;
        case "sliding-window rate" test_progress_window_rate;
        case "slow completions fall back" test_progress_window_fallback;
        case "checkpoint replays tracked apart" test_progress_replayed;
        case "observer rate limit" test_progress_observer_rate_limit;
        case "record_into None is a no-op" test_progress_record_into_none;
        case "snapshot json" test_progress_json;
      ] );
    ( "telemetry-utilization",
      [
        case "synthetic chunk timings" test_utilization_synthetic;
        case "edge cases" test_utilization_edges;
      ] );
    ( "telemetry-chrome",
      [
        case "golden export" test_chrome_export_golden;
        case "empty stream" test_chrome_export_empty;
      ] );
  ]
