(* Tests for the deconvolution extensions: Batch, Bootstrap,
   Identifiability, Richardson-Lucy, L-curve, Synchrony, analytic kernel,
   cell-cycle gene panel. *)

open Numerics
open Testutil

let params = Cellpop.Params.paper_2011
let times = Array.init 13 (fun i -> 15.0 *. float_of_int i)

let kernel =
  lazy
    (Cellpop.Kernel.estimate ~smooth_window:5 params ~rng:(Rng.create 1200) ~n_cells:3000 ~times
       ~n_phi:101)

let basis = Spline.Natural.with_uniform_knots ~lo:0.0 ~hi:1.0 ~num_knots:12

(* --- Batch --- *)

let batch = lazy (Deconv.Batch.prepare ~kernel:(Lazy.force kernel) ~basis ~params ())

let test_batch_matches_single () =
  let profile = Biomodels.Gene_profile.gaussian_pulse ~center:0.4 ~width:0.1 ~height:3.0 () in
  let g = Deconv.Forward.apply_fn (Lazy.force kernel) profile in
  let via_batch =
    Deconv.Batch.solve_gene (Lazy.force batch) ~lambda:(`Fixed 1e-4) ~measurements:g ()
  in
  let problem =
    Deconv.Problem.create ~kernel:(Lazy.force kernel) ~basis ~measurements:g ~params ()
  in
  let direct = Deconv.Solver.solve ~lambda:1e-4 problem in
  check_vec ~tol:1e-9 "batch equals direct solver" direct.Deconv.Solver.alpha
    via_batch.Deconv.Solver.alpha

let test_batch_solve_all () =
  let genes = Array.sub Biomodels.Cell_cycle_genes.panel 0 4 in
  let measurements =
    Mat.of_rows
      (Array.map
         (fun (g : Biomodels.Cell_cycle_genes.gene) ->
           Deconv.Forward.apply_fn (Lazy.force kernel) g.Biomodels.Cell_cycle_genes.profile)
         genes)
  in
  let estimates =
    Deconv.Batch.solve_all (Lazy.force batch) ~lambda:(`Fixed 1e-4) ~measurements ()
  in
  Alcotest.(check int) "one estimate per gene" 4 (Array.length estimates);
  Array.iteri
    (fun i (g : Biomodels.Cell_cycle_genes.gene) ->
      let peak = Deconv.Batch.peak_phase (Lazy.force batch) estimates.(i) in
      check_true
        (Printf.sprintf "%s peak recovered" g.Biomodels.Cell_cycle_genes.name)
        (Float.abs (peak -. g.Biomodels.Cell_cycle_genes.peak_phase) < 0.12))
    genes

let test_batch_classification () =
  let genes = Biomodels.Cell_cycle_genes.panel in
  let measurements =
    Mat.of_rows
      (Array.map
         (fun (g : Biomodels.Cell_cycle_genes.gene) ->
           Deconv.Forward.apply_fn (Lazy.force kernel) g.Biomodels.Cell_cycle_genes.profile)
         genes)
  in
  let estimates =
    Deconv.Batch.solve_all (Lazy.force batch) ~lambda:(`Fixed 1e-4) ~measurements ()
  in
  let predicted =
    Deconv.Batch.classify_by_peak (Lazy.force batch) estimates
      ~boundaries:Biomodels.Cell_cycle_genes.class_boundaries
  in
  let correct = ref 0 in
  Array.iteri
    (fun i g -> if predicted.(i) = Biomodels.Cell_cycle_genes.class_index g then incr correct)
    genes;
  check_true "most genes classified correctly (clean data)" (!correct >= 11)

(* --- Bootstrap --- *)

let test_bootstrap_bands () =
  let profile = Biomodels.Gene_profile.gaussian_pulse ~center:0.5 ~width:0.12 ~height:4.0 () in
  let clean = Deconv.Forward.apply_fn (Lazy.force kernel) profile in
  let noisy, sigmas =
    Deconv.Noise.apply (Deconv.Noise.Gaussian_fraction 0.08) (Rng.create 1201) clean
  in
  let problem =
    Deconv.Problem.create ~sigmas ~kernel:(Lazy.force kernel) ~basis ~measurements:noisy ~params ()
  in
  let estimate = Deconv.Solver.solve ~lambda:1e-3 problem in
  let bands =
    Deconv.Bootstrap.residual ~replicates:60 ~level:0.9 problem estimate ~rng:(Rng.create 1202)
  in
  (* Bands are ordered and contain the point estimate most places. *)
  let n = Array.length bands.Deconv.Bootstrap.lower in
  for j = 0 to n - 1 do
    check_true "lower <= upper"
      (bands.Deconv.Bootstrap.lower.(j) <= bands.Deconv.Bootstrap.upper.(j) +. 1e-12)
  done;
  let inside = Deconv.Bootstrap.coverage bands ~truth:estimate.Deconv.Solver.profile in
  check_true "estimate mostly inside own bands" (inside > 0.8);
  (* Width is positive on average under noise. *)
  check_true "bands have width" (Vec.mean (Deconv.Bootstrap.width bands) > 1e-4);
  (* Coverage of the truth is positive but below nominal: residual bootstrap
     captures sampling variability, not smoothing bias (see Bootstrap doc). *)
  let truth = Array.map profile (Lazy.force kernel).Cellpop.Kernel.phases in
  let truth_coverage = Deconv.Bootstrap.coverage bands ~truth in
  check_true "truth coverage positive" (truth_coverage > 0.15);
  check_true "coverage below nominal due to smoothing bias"
    (truth_coverage <= bands.Deconv.Bootstrap.level +. 0.1)

let test_bootstrap_deterministic () =
  let profile = Biomodels.Gene_profile.gaussian_pulse ~center:0.5 ~width:0.15 ~height:2.0 () in
  let g = Deconv.Forward.apply_fn (Lazy.force kernel) profile in
  let problem = Deconv.Problem.create ~kernel:(Lazy.force kernel) ~basis ~measurements:g ~params () in
  let estimate = Deconv.Solver.solve ~lambda:1e-3 problem in
  let run seed =
    Deconv.Bootstrap.residual ~replicates:20 problem estimate ~rng:(Rng.create seed)
  in
  let a = run 5 and b = run 5 in
  check_vec ~tol:0.0 "same bands" a.Deconv.Bootstrap.lower b.Deconv.Bootstrap.lower

(* --- Identifiability --- *)

let test_identifiability_report () =
  let report = Deconv.Identifiability.analyze (Lazy.force kernel) basis in
  let values = report.Deconv.Identifiability.singular_values in
  Alcotest.(check int) "one value per basis function" basis.Spline.Basis.size
    (Array.length values);
  (* Descending and nonnegative. *)
  for i = 0 to Array.length values - 2 do
    check_true "descending" (values.(i) >= values.(i + 1) -. 1e-12)
  done;
  check_true "nonnegative" (values.(Array.length values - 1) >= 0.0);
  check_true "ill-posed: wide spectrum" (report.Deconv.Identifiability.condition > 1e2)

let test_effective_rank_monotone () =
  let report = Deconv.Identifiability.analyze (Lazy.force kernel) basis in
  let r1 = Deconv.Identifiability.effective_rank report ~relative_noise:1e-6 in
  let r2 = Deconv.Identifiability.effective_rank report ~relative_noise:1e-2 in
  let r3 = Deconv.Identifiability.effective_rank report ~relative_noise:0.5 in
  check_true "rank shrinks with noise" (r1 >= r2 && r2 >= r3);
  check_true "some modes always visible" (r3 >= 1);
  check_true "not everything identifiable at high noise" (r3 < basis.Spline.Basis.size)

let test_measurement_sweep () =
  let schedules =
    [| Array.init 5 (fun i -> 37.5 *. float_of_int i); Array.init 13 (fun i -> 15.0 *. float_of_int i) |]
  in
  let reports =
    Deconv.Identifiability.measurement_sweep params ~rng:(Rng.create 1203) ~n_cells:1000 ~basis
      ~schedules ~n_phi:101
  in
  let (n1, r1), (n2, r2) = (reports.(0), reports.(1)) in
  Alcotest.(check int) "schedule sizes" 5 n1;
  Alcotest.(check int) "schedule sizes" 13 n2;
  check_true "more measurements, more identifiable modes"
    (Deconv.Identifiability.effective_rank r2 ~relative_noise:1e-3
     >= Deconv.Identifiability.effective_rank r1 ~relative_noise:1e-3)

(* --- Richardson-Lucy --- *)

let test_rl_preserves_positivity_and_fits () =
  let profile = Biomodels.Gene_profile.gaussian_pulse ~center:0.45 ~width:0.12 ~height:4.0 () in
  let g = Deconv.Forward.apply_fn (Lazy.force kernel) profile in
  let result = Deconv.Richardson_lucy.deconvolve ~iterations:300 (Lazy.force kernel) ~measurements:g () in
  Array.iter (fun v -> check_true "positive" (v > 0.0)) result.Deconv.Richardson_lucy.profile;
  (* The data misfit decreases over iterations. *)
  let h = result.Deconv.Richardson_lucy.misfit_history in
  check_true "misfit decreases"
    (h.(Array.length h - 1) < h.(0) /. 2.0);
  (* And the recovered profile resembles the truth. *)
  let truth = Array.map profile (Lazy.force kernel).Cellpop.Kernel.phases in
  check_true "shape recovered"
    (Stats.correlation truth result.Deconv.Richardson_lucy.profile > 0.9)

let test_rl_worse_than_spline_under_noise () =
  (* The headline comparison: the paper's regularized spline estimator beats
     the classical baseline on noisy data. *)
  let profile = Biomodels.Gene_profile.gaussian_pulse ~center:0.45 ~width:0.12 ~height:4.0 () in
  let clean = Deconv.Forward.apply_fn (Lazy.force kernel) profile in
  let noisy, sigmas =
    Deconv.Noise.apply (Deconv.Noise.Gaussian_fraction 0.10) (Rng.create 1204) clean
  in
  let rl = Deconv.Richardson_lucy.deconvolve ~iterations:300 (Lazy.force kernel) ~measurements:noisy () in
  let problem =
    Deconv.Problem.create ~sigmas ~kernel:(Lazy.force kernel) ~basis ~measurements:noisy ~params ()
  in
  let lambda = Deconv.Lambda.select problem ~method_:`Gcv () in
  let spline = Deconv.Solver.solve ~lambda problem in
  let truth = Array.map profile (Lazy.force kernel).Cellpop.Kernel.phases in
  let rl_err = Stats.rmse truth rl.Deconv.Richardson_lucy.profile in
  let spline_err = Stats.rmse truth spline.Deconv.Solver.profile in
  check_true "spline estimator at least as good as RL" (spline_err <= rl_err *. 1.05)

(* --- L-curve --- *)

let test_lcurve_selection () =
  let profile = Biomodels.Gene_profile.gaussian_pulse ~center:0.5 ~width:0.12 ~height:4.0 () in
  let clean = Deconv.Forward.apply_fn (Lazy.force kernel) profile in
  let noisy, sigmas =
    Deconv.Noise.apply (Deconv.Noise.Gaussian_fraction 0.10) (Rng.create 1205) clean
  in
  let problem =
    Deconv.Problem.create ~sigmas ~kernel:(Lazy.force kernel) ~basis ~measurements:noisy ~params ()
  in
  let lambdas = Optimize.Cross_validation.log_lambda_grid ~lo:(-7.0) ~hi:1.0 ~count:17 in
  let best, curve = Deconv.Lambda.lcurve problem ~lambdas in
  Alcotest.(check int) "full curve" 17 (Array.length curve);
  check_true "corner not at the extremes" (best > lambdas.(0) && best < lambdas.(16));
  (* The L-curve lambda produces a usable estimate. *)
  let est = Deconv.Solver.solve ~lambda:best problem in
  let truth = Array.map profile (Lazy.force kernel).Cellpop.Kernel.phases in
  check_true "reasonable recovery" (Stats.correlation truth est.Deconv.Solver.profile > 0.9)

(* --- Synchrony --- *)

let test_synchrony_extremes () =
  let all_at phase =
    { Cellpop.Population.time = 0.0;
      cells = Array.init 100 (fun _ -> { Cellpop.Cell.phase; phi_sst = 0.15; cycle_minutes = 150.0 }) }
  in
  check_close ~tol:1e-9 "fully synchronized" 1.0 (Cellpop.Synchrony.order_parameter (all_at 0.3));
  check_close ~tol:1e-9 "zero entropy" 0.0 (Cellpop.Synchrony.phase_entropy (all_at 0.3));
  let uniform =
    { Cellpop.Population.time = 0.0;
      cells = Array.init 1000 (fun i ->
          { Cellpop.Cell.phase = float_of_int i /. 1000.0; phi_sst = 0.15; cycle_minutes = 150.0 }) }
  in
  check_close ~tol:0.01 "uniform has R ~ 0" 0.0 (Cellpop.Synchrony.order_parameter uniform);
  check_close ~tol:0.01 "uniform entropy ~ 1" 1.0 (Cellpop.Synchrony.phase_entropy uniform)

let test_mean_phase () =
  let s =
    { Cellpop.Population.time = 0.0;
      cells = Array.init 50 (fun _ -> { Cellpop.Cell.phase = 0.25; phi_sst = 0.15; cycle_minutes = 150.0 }) }
  in
  check_close ~tol:1e-9 "mean phase" 0.25 (Cellpop.Synchrony.mean_phase s)

let test_synchrony_decays () =
  let rng = Rng.create 1206 in
  let sample_times = Vec.linspace 0.0 600.0 7 in
  let snapshots = Cellpop.Population.simulate params ~rng ~n0:3000 ~times:sample_times in
  let order, entropy = Cellpop.Synchrony.over_time snapshots in
  check_true "starts synchronized" (order.(0) > 0.9);
  check_true "ends less synchronized" (order.(6) < 0.6);
  check_true "entropy rises" (entropy.(6) > entropy.(0));
  match Cellpop.Synchrony.decay_time order ~times:sample_times ~threshold:0.7 with
  | Some t -> check_true "decay time within range" (t > 0.0 && t < 600.0)
  | None -> Alcotest.fail "synchrony should decay below 0.7"

(* --- Analytic kernel --- *)

let test_analytic_kernel_matches_mc () =
  let short_times = [| 0.0; 25.0; 50.0; 75.0 |] in
  let analytic = Cellpop.Kernel_analytic.estimate params ~times:short_times ~n_phi:101 in
  check_true "normalized" (Cellpop.Kernel.check_normalization analytic < 1e-10);
  let mc =
    Cellpop.Kernel.estimate ~smooth_window:5 params ~rng:(Rng.create 1207) ~n_cells:20_000
      ~times:short_times ~n_phi:101
  in
  for m = 0 to 3 do
    let ra = Cellpop.Kernel.row analytic m and rm = Cellpop.Kernel.row mc m in
    let l1 = ref 0.0 in
    Array.iteri
      (fun j a -> l1 := !l1 +. (Float.abs (a -. rm.(j)) *. analytic.Cellpop.Kernel.bin_width))
      ra;
    check_true (Printf.sprintf "MC close to analytic at t=%g" short_times.(m)) (!l1 < 0.08)
  done

let test_analytic_kernel_validity_bound () =
  let bound = Cellpop.Kernel_analytic.valid_until params in
  check_true "bound is positive and below one cycle"
    (bound > 30.0 && bound < params.Cellpop.Params.mean_cycle_minutes)

let test_mc_converges_to_analytic () =
  (* Kernel error shrinks as the Monte-Carlo cell count grows. *)
  let short_times = [| 40.0 |] in
  let analytic = Cellpop.Kernel_analytic.estimate params ~times:short_times ~n_phi:101 in
  let error n_cells seed =
    let mc =
      Cellpop.Kernel.estimate ~smooth_window:5 params ~rng:(Rng.create seed) ~n_cells
        ~times:short_times ~n_phi:101
    in
    let ra = Cellpop.Kernel.row analytic 0 and rm = Cellpop.Kernel.row mc 0 in
    let acc = ref 0.0 in
    Array.iteri (fun j a -> acc := !acc +. Float.abs (a -. rm.(j))) ra;
    !acc
  in
  let small = error 300 11 and large = error 30_000 12 in
  check_true "error shrinks with cells" (large < small /. 2.0)

(* --- Cell-cycle gene panel --- *)

let test_panel_structure () =
  let genes = Biomodels.Cell_cycle_genes.panel in
  Alcotest.(check int) "twelve genes" 12 (Array.length genes);
  (* Three per class. *)
  let counts = Array.make 4 0 in
  Array.iter
    (fun g ->
      let i = Biomodels.Cell_cycle_genes.class_index g in
      counts.(i) <- counts.(i) + 1)
    genes;
  Array.iter (fun c -> Alcotest.(check int) "three per class" 3 c) counts;
  (* Profiles peak where declared, and peaks respect the class boundaries. *)
  let grid = Vec.linspace 0.0 1.0 500 in
  Array.iter
    (fun (g : Biomodels.Cell_cycle_genes.gene) ->
      let values = Array.map g.Biomodels.Cell_cycle_genes.profile grid in
      let peak = grid.(Vec.argmax values) in
      check_close ~tol:0.02 "declared peak" g.Biomodels.Cell_cycle_genes.peak_phase peak;
      check_true "nonnegative" (Vec.min values >= 0.0))
    genes

let test_panel_boundaries_separate_classes () =
  let b = Biomodels.Cell_cycle_genes.class_boundaries in
  Array.iter
    (fun (g : Biomodels.Cell_cycle_genes.gene) ->
      let expected = Biomodels.Cell_cycle_genes.class_index g in
      let peak = g.Biomodels.Cell_cycle_genes.peak_phase in
      let rec window i = if i >= Array.length b || peak < b.(i) then i else window (i + 1) in
      Alcotest.(check int) ("window of " ^ g.Biomodels.Cell_cycle_genes.name) expected (window 0))
    Biomodels.Cell_cycle_genes.panel

let tests =
  [
    ( "batch",
      [
        case "batch equals direct solver" test_batch_matches_single;
        case "solve_all recovers peaks" test_batch_solve_all;
        case "classification on clean data" test_batch_classification;
      ] );
    ( "bootstrap",
      [
        case "bands ordered and cover" test_bootstrap_bands;
        case "deterministic" test_bootstrap_deterministic;
      ] );
    ( "identifiability",
      [
        case "report structure" test_identifiability_report;
        case "effective rank monotone in noise" test_effective_rank_monotone;
        case "measurement sweep" test_measurement_sweep;
      ] );
    ( "richardson-lucy",
      [
        case "positivity and fit" test_rl_preserves_positivity_and_fits;
        case "spline method matches or beats RL" test_rl_worse_than_spline_under_noise;
      ] );
    ( "lcurve",
      [ case "corner selection" test_lcurve_selection ] );
    ( "synchrony",
      [
        case "extreme populations" test_synchrony_extremes;
        case "mean phase" test_mean_phase;
        case "batch culture desynchronizes" test_synchrony_decays;
      ] );
    ( "kernel-analytic",
      [
        case "matches monte carlo" test_analytic_kernel_matches_mc;
        case "validity bound" test_analytic_kernel_validity_bound;
        case "mc converges to analytic" test_mc_converges_to_analytic;
      ] );
    ( "cell-cycle-genes",
      [
        case "panel structure" test_panel_structure;
        case "boundaries separate classes" test_panel_boundaries_separate_classes;
      ] );
  ]
