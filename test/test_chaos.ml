(* The chaos harness (lib/core/chaos.ml) run at test scale: injected
   per-gene faults plus a mid-batch crash, with the three isolation
   invariants (exact failure set, bitwise-clean genes at every jobs
   setting, bit-exact kill/resume) checked by the harness itself. The
   acceptance-criterion scale (200 genes, 10 faults) runs via
   `dune build @runtest-chaos` or `deconv-cli chaos`. *)

open Testutil

let run_config config =
  let path = Filename.temp_file "deconv-test-chaos" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> Deconv.Chaos.run ~config ~journal_path:path ())

let small =
  {
    Deconv.Chaos.default_config with
    Deconv.Chaos.genes = 24;
    faults = 4;
    jobs = [ 1; 2 ];
    block = 6;
    n_cells = 300;
    n_phi = 31;
    n_times = 7;
  }

let test_small_scenario () =
  let report = run_config small in
  List.iter (fun v -> Printf.eprintf "chaos violation: %s\n" v)
    report.Deconv.Chaos.violations;
  check_true "all isolation invariants hold" (Deconv.Chaos.passed report);
  Alcotest.(check int) "exactly the injected faults journaled as errors" 4
    report.Deconv.Chaos.journaled_errors;
  Alcotest.(check int) "chosen fault rows" 4
    (Array.length report.Deconv.Chaos.faulty_rows);
  check_true "resume replayed journaled genes" (report.Deconv.Chaos.replayed > 0)

let test_fault_free_scenario () =
  (* faults = 0: nothing fails, the crash/resume leg still exercises the
     journal, and the class table is empty. *)
  let report = run_config { small with Deconv.Chaos.faults = 0 } in
  check_true "invariants hold without faults" (Deconv.Chaos.passed report);
  Alcotest.(check int) "no errors journaled" 0 report.Deconv.Chaos.journaled_errors;
  Alcotest.(check (list (pair string int)))
    "no failure classes" [] report.Deconv.Chaos.class_counts

let tests =
  [
    ( "chaos-harness",
      [
        case "small chaos scenario passes" test_small_scenario;
        case "fault-free scenario passes" test_fault_free_scenario;
      ] );
  ]
