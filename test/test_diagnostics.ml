open Numerics
open Testutil

let params = Cellpop.Params.paper_2011
let times = Array.init 13 (fun i -> 15.0 *. float_of_int i)

let kernel =
  lazy
    (Cellpop.Kernel.estimate ~smooth_window:5 params ~rng:(Rng.create 2700) ~n_cells:2000 ~times
       ~n_phi:101)

let basis = Spline.Natural.with_uniform_knots ~lo:0.0 ~hi:1.0 ~num_knots:12

let pulse = Biomodels.Gene_profile.gaussian_pulse ~center:0.5 ~width:0.12 ~height:4.0 ()

let make_problem_estimate ~sigma_claim ~sigma_true ~seed =
  let clean = Deconv.Forward.apply_fn (Lazy.force kernel) pulse in
  let noisy, _ =
    Deconv.Noise.apply (Deconv.Noise.Gaussian_absolute sigma_true) (Rng.create seed) clean
  in
  let sigmas = Vec.make 13 sigma_claim in
  let problem =
    Deconv.Problem.create ~sigmas ~kernel:(Lazy.force kernel) ~basis ~measurements:noisy ~params ()
  in
  let lambda = Deconv.Lambda.select problem ~method_:`Gcv () in
  (problem, Deconv.Solver.solve ~lambda problem)

let test_well_specified_model_adequate () =
  (* Correctly stated noise level: the fit should not be rejected. *)
  let problem, estimate = make_problem_estimate ~sigma_claim:0.15 ~sigma_true:0.15 ~seed:1 in
  let report = Deconv.Diagnostics.analyze problem estimate in
  check_true "p-value not tiny" (report.Deconv.Diagnostics.p_value > 0.01);
  check_true "adequate" (Deconv.Diagnostics.adequate report);
  Alcotest.(check int) "one residual per measurement" 13
    (Array.length report.Deconv.Diagnostics.standardized_residuals)

let test_understated_noise_rejected () =
  (* Claiming sigma 10x smaller than reality: chi2 blows up, p ~ 0. *)
  let problem, estimate = make_problem_estimate ~sigma_claim:0.015 ~sigma_true:0.15 ~seed:2 in
  let report = Deconv.Diagnostics.analyze problem estimate in
  ignore report.Deconv.Diagnostics.lag1_autocorrelation;
  check_true "lack of fit detected"
    (report.Deconv.Diagnostics.p_value < 0.05 || not (Deconv.Diagnostics.adequate report))

let test_misspecified_kernel_flagged () =
  (* Data from a much slower culture, analyzed with the 150-min kernel and a
     small claimed noise: residuals show structure. *)
  let slow = { params with Cellpop.Params.mean_cycle_minutes = 210.0 } in
  let snapshots = Cellpop.Population.simulate slow ~rng:(Rng.create 3) ~n0:4000 ~times in
  let clean = Array.map (Cellpop.Population.mean_signal slow (fun ~phi -> pulse phi)) snapshots in
  let sigmas = Vec.make 13 0.02 in
  let problem =
    Deconv.Problem.create ~sigmas ~kernel:(Lazy.force kernel) ~basis ~measurements:clean ~params ()
  in
  let estimate = Deconv.Solver.solve ~lambda:1e-3 problem in
  let report = Deconv.Diagnostics.analyze problem estimate in
  check_true "misspecification rejected" (not (Deconv.Diagnostics.adequate report))

let test_chi2_scale () =
  let problem, estimate = make_problem_estimate ~sigma_claim:0.15 ~sigma_true:0.15 ~seed:4 in
  let report = Deconv.Diagnostics.analyze problem estimate in
  (* chi2 should be on the order of the residual dof. *)
  check_true "chi2 near dof"
    (report.Deconv.Diagnostics.chi2 < 4.0 *. report.Deconv.Diagnostics.dof);
  check_true "dof below measurement count" (report.Deconv.Diagnostics.dof < 13.0);
  check_true "report prints" (String.length (Deconv.Diagnostics.to_string report) > 10)

let test_kernel_save_load_roundtrip () =
  let k = Lazy.force kernel in
  let path = Filename.concat (Filename.get_temp_dir_name ()) "kernel_roundtrip.kernel" in
  Cellpop.Kernel.save k ~path;
  let k2 = Cellpop.Kernel.load ~path in
  check_vec ~tol:0.0 "phases preserved" k.Cellpop.Kernel.phases k2.Cellpop.Kernel.phases;
  check_vec ~tol:0.0 "times preserved" k.Cellpop.Kernel.times k2.Cellpop.Kernel.times;
  check_close ~tol:0.0 "bin width preserved" k.Cellpop.Kernel.bin_width k2.Cellpop.Kernel.bin_width;
  check_true "q preserved" (Mat.approx_equal ~tol:0.0 k.Cellpop.Kernel.q k2.Cellpop.Kernel.q);
  check_true "q_tilde preserved"
    (Mat.approx_equal ~tol:0.0 k.Cellpop.Kernel.q_tilde k2.Cellpop.Kernel.q_tilde);
  Sys.remove path

let test_kernel_load_rejects_garbage () =
  let path = Filename.concat (Filename.get_temp_dir_name ()) "kernel_garbage.kernel" in
  let oc = open_out path in
  output_string oc "not,a,kernel\n1,2,3\n";
  close_out oc;
  (match Cellpop.Kernel.load ~path with
  | _ -> Alcotest.fail "garbage accepted"
  | exception Failure _ -> ());
  Sys.remove path

let tests =
  [
    ( "diagnostics",
      [
        case "well-specified model is adequate" test_well_specified_model_adequate;
        case "understated noise rejected" test_understated_noise_rejected;
        case "misspecified kernel flagged" test_misspecified_kernel_flagged;
        case "chi2 scale" test_chi2_scale;
      ] );
    ( "kernel-io",
      [
        case "save/load roundtrip" test_kernel_save_load_roundtrip;
        case "load rejects garbage" test_kernel_load_rejects_garbage;
      ] );
  ]
