(* Tests for Forward, Constraints, Noise and Metrics — the building blocks
   of the deconvolution estimator. *)

open Numerics
open Testutil

let params = Cellpop.Params.paper_2011
let times = [| 0.0; 30.0; 60.0; 90.0; 120.0; 150.0; 180.0 |]

let kernel =
  lazy (Cellpop.Kernel.estimate params ~rng:(Rng.create 600) ~n_cells:2500 ~times ~n_phi:101)

let basis = Spline.Natural.with_uniform_knots ~lo:0.0 ~hi:1.0 ~num_knots:10

(* --- Forward --- *)

let test_forward_rows_sum_to_one () =
  let a = Deconv.Forward.matrix_grid (Lazy.force kernel) in
  for m = 0 to a.Mat.rows - 1 do
    check_close ~tol:1e-10 "row sum" 1.0 (Vec.sum (Mat.row a m))
  done

let test_forward_matrix_grid_applies () =
  let k = Lazy.force kernel in
  let f = Array.init 101 (fun j -> Float.sin (0.2 *. float_of_int j) +. 2.0) in
  let via_matrix = Mat.mv (Deconv.Forward.matrix_grid k) f in
  let via_kernel = Deconv.Forward.apply k f in
  check_vec ~tol:1e-10 "matrix application" via_kernel via_matrix

let test_forward_basis_factorization () =
  let k = Lazy.force kernel in
  let ab = Deconv.Forward.matrix_basis k basis in
  let expected = Mat.matmul (Deconv.Forward.matrix_grid k) (Spline.Basis.design basis k.Cellpop.Kernel.phases) in
  check_true "A_basis = A_grid design" (Mat.approx_equal ~tol:1e-10 expected ab)

let test_forward_apply_fn () =
  let k = Lazy.force kernel in
  let profile phi = 1.0 +. phi in
  let from_fn = Deconv.Forward.apply_fn k profile in
  let from_samples = Deconv.Forward.apply k (Array.map profile k.Cellpop.Kernel.phases) in
  check_vec ~tol:1e-12 "apply_fn = apply on samples" from_samples from_fn

let test_forward_damps_oscillation () =
  (* Asynchrony damps a fast phase oscillation: population amplitude is well
     below single-cell amplitude at late times when phases have spread. *)
  let k = Lazy.force kernel in
  let profile phi = 1.0 +. Float.sin (6.0 *. Float.pi *. phi) in
  let g = Deconv.Forward.apply_fn k profile in
  let late = Array.sub g 3 4 in
  check_true "late-time damping" (Vec.max late -. Vec.min late < 1.2)

(* --- Constraints --- *)

let test_beta0 () =
  (* beta0 = E[0.4/(1-phi_sst)] with phi_sst ~ N(0.15, 0.0195): close to
     0.4/0.85 with a small positive Jensen correction. *)
  let b0 = Deconv.Constraints.beta0 params in
  check_true "beta0 magnitude" (b0 > 0.4 /. 0.85 && b0 < 0.4 /. 0.85 *. 1.01)

let test_density_integral_of_one () =
  check_close ~tol:1e-9 "p integrates to 1" 1.0
    (Deconv.Constraints.density_integral params (fun _ -> 1.0))

let test_density_integral_mean () =
  check_close ~tol:1e-9 "E[phi_sst]" 0.15
    (Deconv.Constraints.density_integral params (fun phi -> phi))

let test_conservation_row_values () =
  (* On the constant basis function the conservation functional is
     1 - 0.4 - 0.6 = 0; on the linear one it is 1 - 0.6 E[phi_sst]. *)
  let row = Deconv.Constraints.conservation_row params basis in
  check_close ~tol:1e-9 "constant annihilated" 0.0 row.(0);
  check_close ~tol:1e-9 "linear value" (1.0 -. (0.6 *. 0.15)) row.(1)

let test_rate_row_values () =
  (* On the constant: -beta0. On the linear: beta0 - E[beta phi] - 0.4 - 0.6 + 1. *)
  let row = Deconv.Constraints.rate_continuity_row params basis in
  let b0 = Deconv.Constraints.beta0 params in
  check_close ~tol:1e-9 "constant gives -beta0" (-.b0) row.(0);
  let e_beta_phi =
    Deconv.Constraints.density_integral params (fun phi -> 0.4 /. (1.0 -. phi) *. phi)
  in
  check_close ~tol:1e-9 "linear value" (b0 -. e_beta_phi -. 0.4 -. 0.6 +. 1.0) row.(1)

let test_residual_functions () =
  let alpha = Array.init basis.Spline.Basis.size (fun i -> float_of_int (i + 1)) in
  let row = Deconv.Constraints.conservation_row params basis in
  check_close ~tol:1e-12 "conservation residual = row dot alpha" (Vec.dot row alpha)
    (Deconv.Constraints.residual_conservation params basis alpha);
  let row2 = Deconv.Constraints.rate_continuity_row params basis in
  check_close ~tol:1e-12 "rate residual = row dot alpha" (Vec.dot row2 alpha)
    (Deconv.Constraints.residual_rate_continuity params basis alpha)

let test_positivity_rows () =
  let grid = Vec.linspace 0.0 1.0 21 in
  let rows = Deconv.Constraints.positivity_rows basis ~grid in
  Alcotest.(check (pair int int)) "dims" (21, 10) (Mat.dims rows);
  check_close ~tol:1e-12 "entries are basis evals" (basis.Spline.Basis.eval 3 grid.(7))
    (Mat.get rows 7 3)

(* --- Noise --- *)

let test_no_noise () =
  let g = [| 1.0; 2.0; 3.0 |] in
  let noisy, sigmas = Deconv.Noise.apply Deconv.Noise.No_noise (Rng.create 1) g in
  check_vec "identity" g noisy;
  check_vec "unit sigmas" [| 1.0; 1.0; 1.0 |] sigmas

let test_gaussian_fraction_statistics () =
  let rng = Rng.create 601 in
  let g = Array.make 20_000 10.0 in
  let noisy, sigmas = Deconv.Noise.apply (Deconv.Noise.Gaussian_fraction 0.10) rng g in
  check_close ~tol:0.02 "mean preserved" 10.0 (Stats.mean noisy);
  check_close ~tol:0.02 "std is 10%" 1.0 (Stats.std noisy);
  check_close "sigma reported" 1.0 sigmas.(0)

let test_gaussian_fraction_scales_with_magnitude () =
  let rng = Rng.create 602 in
  let g = [| 1.0; 100.0 |] in
  let _, sigmas = Deconv.Noise.apply (Deconv.Noise.Gaussian_fraction 0.05) rng g in
  check_close ~tol:1e-12 "large point sigma = 5% of value" 5.0 sigmas.(1);
  (* The small point hits the floor: 0.005 * max|G| = 0.5 > 0.05 * 1. *)
  check_close ~tol:1e-12 "small point sigma floored" 0.5 sigmas.(0)

let test_sigma_floor () =
  (* Zero measurements do not produce zero sigmas. *)
  let rng = Rng.create 603 in
  let g = [| 0.0; 5.0 |] in
  let _, sigmas = Deconv.Noise.apply (Deconv.Noise.Gaussian_fraction 0.1) rng g in
  check_true "floored sigma" (sigmas.(0) > 0.0)

let test_gaussian_absolute () =
  let rng = Rng.create 604 in
  let g = Array.make 20_000 5.0 in
  let noisy, sigmas = Deconv.Noise.apply (Deconv.Noise.Gaussian_absolute 0.3) rng g in
  check_close ~tol:0.01 "absolute noise std" 0.3 (Stats.std noisy);
  check_close "constant sigmas" 0.3 sigmas.(0)

let test_lognormal_mean_preserving () =
  let rng = Rng.create 605 in
  let g = Array.make 50_000 4.0 in
  let noisy, _ = Deconv.Noise.apply (Deconv.Noise.Multiplicative_lognormal 0.2) rng g in
  check_close ~tol:0.03 "mean preserved" 4.0 (Stats.mean noisy);
  Array.iter (fun v -> check_true "multiplicative noise keeps sign" (v > 0.0)) noisy

let test_noise_deterministic () =
  let run () = Deconv.Noise.apply (Deconv.Noise.Gaussian_fraction 0.1) (Rng.create 9) [| 1.0; 2.0 |] in
  let a, _ = run () and b, _ = run () in
  check_vec ~tol:0.0 "same noise from same seed" a b

let test_noise_to_string () =
  Alcotest.(check string) "describes the model" "gaussian 10% of magnitude"
    (Deconv.Noise.to_string (Deconv.Noise.Gaussian_fraction 0.10))

(* --- Metrics --- *)

let test_metrics_identity () =
  let x = [| 1.0; 2.0; 3.0 |] in
  let c = Deconv.Metrics.compare ~truth:x ~estimate:x in
  check_close "rmse 0" 0.0 c.Deconv.Metrics.rmse;
  check_close "mae 0" 0.0 c.Deconv.Metrics.mae;
  check_close ~tol:1e-12 "corr 1" 1.0 c.Deconv.Metrics.correlation

let test_metrics_values () =
  let truth = [| 0.0; 2.0 |] and est = [| 1.0; 2.0 |] in
  let c = Deconv.Metrics.compare ~truth ~estimate:est in
  check_close ~tol:1e-12 "rmse" (1.0 /. sqrt 2.0) c.Deconv.Metrics.rmse;
  check_close ~tol:1e-12 "nrmse" (1.0 /. sqrt 2.0 /. 2.0) c.Deconv.Metrics.nrmse;
  check_close ~tol:1e-12 "max" 1.0 c.Deconv.Metrics.max_abs

let test_improvement_factor () =
  let truth = [| 1.0; 1.0; 1.0 |] in
  let baseline = [| 3.0; 3.0; 3.0 |] in
  let estimate = [| 2.0; 2.0; 2.0 |] in
  check_close ~tol:1e-12 "factor 2" 2.0
    (Deconv.Metrics.improvement_factor ~truth ~baseline ~estimate)

let tests =
  [
    ( "forward",
      [
        case "rows sum to one" test_forward_rows_sum_to_one;
        case "matrix application" test_forward_matrix_grid_applies;
        case "basis factorization" test_forward_basis_factorization;
        case "apply_fn" test_forward_apply_fn;
        case "asynchrony damps oscillations" test_forward_damps_oscillation;
      ] );
    ( "constraints",
      [
        case "beta0" test_beta0;
        case "density integral normalization" test_density_integral_of_one;
        case "density integral mean" test_density_integral_mean;
        case "conservation row closed forms" test_conservation_row_values;
        case "rate row closed forms" test_rate_row_values;
        case "residual helpers" test_residual_functions;
        case "positivity rows" test_positivity_rows;
      ] );
    ( "noise",
      [
        case "no noise" test_no_noise;
        case "gaussian fraction statistics" test_gaussian_fraction_statistics;
        case "sigma scales with magnitude" test_gaussian_fraction_scales_with_magnitude;
        case "sigma floor" test_sigma_floor;
        case "gaussian absolute" test_gaussian_absolute;
        case "lognormal mean preserving" test_lognormal_mean_preserving;
        case "deterministic" test_noise_deterministic;
        case "to_string" test_noise_to_string;
      ] );
    ( "metrics",
      [
        case "identity comparison" test_metrics_identity;
        case "known values" test_metrics_values;
        case "improvement factor" test_improvement_factor;
      ] );
  ]
