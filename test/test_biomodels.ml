open Numerics
open Testutil

let lv = Biomodels.Lotka_volterra.default_params
let lv_x0 = Biomodels.Lotka_volterra.default_x0

let test_lv_period () =
  let t = Biomodels.Lotka_volterra.period lv ~x0:lv_x0 in
  check_true "period near 150 minutes" (Float.abs (t -. 150.0) < 2.0)

let test_lv_equilibrium () =
  let eq = Biomodels.Lotka_volterra.equilibrium lv in
  let rhs = Biomodels.Lotka_volterra.system lv 0.0 eq in
  check_vec ~tol:1e-12 "fixed point" [| 0.0; 0.0 |] rhs

let test_lv_amplitudes () =
  (* Paper Fig. 2: x1 stays below ~3, x2 reaches ~12. *)
  let _, f1, f2 = Biomodels.Lotka_volterra.phase_profiles lv ~x0:lv_x0 ~n_phi:200 in
  check_true "x1 bounded" (Vec.max f1 < 3.5 && Vec.max f1 > 2.0);
  check_true "x2 amplitude" (Vec.max f2 > 9.0 && Vec.max f2 < 14.0);
  check_true "both positive" (Vec.min f1 > 0.0 && Vec.min f2 > 0.0)

let test_lv_profile_closes () =
  (* One full period: profile ends near where it starts. *)
  let _, f1, _ = Biomodels.Lotka_volterra.phase_profiles lv ~x0:lv_x0 ~n_phi:400 in
  check_true "profile closes" (Float.abs (f1.(399) -. f1.(0)) < 0.15 *. Vec.max f1)

let test_lv_conserved_quantity () =
  let v0 = Biomodels.Lotka_volterra.conserved lv lv_x0 in
  let times = Vec.linspace 0.0 450.0 91 in
  let sol = Biomodels.Lotka_volterra.simulate lv ~x0:lv_x0 ~times in
  for i = 0 to 90 do
    check_rel ~tol:1e-6 "invariant along flow" v0
      (Biomodels.Lotka_volterra.conserved lv (Mat.row sol.Ode.states i))
  done

let test_goodwin_oscillates () =
  let p = Biomodels.Goodwin.default_params in
  let t = Biomodels.Goodwin.period p ~x0:Biomodels.Goodwin.default_x0 in
  check_true "goodwin period near 150" (Float.abs (t -. 150.0) < 15.0)

let test_goodwin_profile () =
  let p = Biomodels.Goodwin.default_params in
  let phases, profile = Biomodels.Goodwin.phase_profile p ~x0:Biomodels.Goodwin.default_x0 ~n_phi:100 in
  Alcotest.(check int) "profile length" 100 (Array.length profile);
  check_close ~tol:1e-9 "phase grid midpoint convention" 0.005 phases.(0);
  check_true "oscillation has amplitude" (Vec.max profile -. Vec.min profile > 0.1 *. Vec.max profile);
  check_true "concentrations positive" (Vec.min profile > 0.0)

let test_repressilator_oscillates () =
  let p = Biomodels.Repressilator.default_params in
  let t = Biomodels.Repressilator.period p ~x0:Biomodels.Repressilator.default_x0 in
  check_true "repressilator period near 150" (Float.abs (t -. 150.0) < 15.0)

let test_repressilator_species_shifted () =
  (* The three mRNAs oscillate with phase shifts of a third of a period. *)
  let p = Biomodels.Repressilator.default_params in
  let x0 = Biomodels.Repressilator.default_x0 in
  let peak species =
    let _, m = Biomodels.Repressilator.phase_profile ~species p ~x0 ~n_phi:90 in
    Vec.argmax m
  in
  let p1 = peak 0 and p2 = peak 1 and p3 = peak 2 in
  (* Repression by p_{i-1} makes the genes fire in the order 1 -> 3 -> 2,
     each a third of a period apart. *)
  let shift a b = (b - a + 90) mod 90 in
  check_true "m3 lags m1 by a third" (shift p1 p3 > 15 && shift p1 p3 < 45);
  check_true "m2 lags m3 by a third" (shift p3 p2 > 15 && shift p3 p2 < 45)

let test_gene_profiles () =
  let pulse = Biomodels.Gene_profile.gaussian_pulse ~center:0.5 ~width:0.1 ~height:2.0 () in
  check_close ~tol:1e-12 "pulse peak" 2.0 (pulse 0.5);
  check_true "pulse decays" (pulse 0.9 < 0.01);
  let step = Biomodels.Gene_profile.smoothstep ~at:0.5 ~width:0.05 ~low:1.0 ~high:3.0 in
  check_close ~tol:1e-4 "step low side" 1.0 (step 0.0);
  check_close ~tol:1e-4 "step high side" 3.0 (step 1.0);
  check_close ~tol:1e-12 "step midpoint" 2.0 (step 0.5);
  let ramp = Biomodels.Gene_profile.ramp ~from_value:1.0 ~to_value:5.0 in
  check_close ~tol:1e-12 "ramp midpoint" 3.0 (ramp 0.5);
  let const = Biomodels.Gene_profile.constant 7.0 in
  check_close "constant" 7.0 (const 0.123);
  let cos_profile = Biomodels.Gene_profile.cosine ~mean:1.0 ~amplitude:0.5 () in
  check_close ~tol:1e-12 "cosine at 0" 1.5 (cos_profile 0.0);
  check_true "cosine clipped at zero"
    (Biomodels.Gene_profile.cosine ~mean:0.1 ~amplitude:1.0 () 0.5 >= 0.0)

let test_delayed_pulse () =
  let f = Biomodels.Gene_profile.delayed_pulse ~delay:0.15 ~peak_at:0.4 ~peak:10.0 ~tail:1.0 in
  check_close "zero before delay" 0.0 (f 0.1);
  check_close "zero at delay" 0.0 (f 0.15);
  check_close ~tol:1e-12 "peak value" 10.0 (f 0.4);
  check_true "decays after peak" (f 0.7 < 5.0 && f 0.7 > 1.0);
  check_true "monotone rise" (f 0.2 < f 0.3 && f 0.3 < f 0.4)

let test_from_samples () =
  let phases = [| 0.0; 0.5; 1.0 |] in
  let values = [| 1.0; 3.0; 2.0 |] in
  let f = Biomodels.Gene_profile.from_samples ~phases ~values in
  check_close ~tol:1e-12 "interpolates samples" 3.0 (f 0.5);
  check_close ~tol:1e-12 "clamps outside" 1.0 (f (-0.5))

let test_ftsz_profile_features () =
  let grid = Vec.linspace 0.0 1.0 201 in
  let values = Biomodels.Ftsz.sample grid in
  (* Documented biology: no transcription during the swarmer stage. *)
  check_true "delay present in truth"
    (Biomodels.Ftsz.delay_visible ~phases:grid ~values ~threshold:0.02);
  (* Peak near phi = 0.4. *)
  let peak_phase = grid.(Vec.argmax values) in
  check_true "peak near 0.4" (Float.abs (peak_phase -. 0.4) < 0.05);
  (* No subsequent increase after the maximum. *)
  check_true "post-peak drop"
    (Biomodels.Ftsz.post_peak_monotone_drop ~phases:grid ~values ~tolerance:0.02);
  (* Non-negative everywhere. *)
  check_true "profile nonnegative" (Vec.min values >= 0.0)

let test_ftsz_conservation_consistency () =
  (* The synthetic truth satisfies the division-conservation relation at the
     mean transition phase. *)
  let f = Biomodels.Ftsz.profile in
  check_close ~tol:0.05 "f(1) = 0.4 f(0) + 0.6 f(phi_sst)"
    ((0.4 *. f 0.0) +. (0.6 *. f Biomodels.Ftsz.transcription_onset))
    (f 1.0)

let test_ftsz_detectors_reject_bad_profiles () =
  let grid = Vec.linspace 0.0 1.0 101 in
  (* A profile expressed from phase 0 has no delay. *)
  let no_delay = Array.map (fun phi -> 1.0 +. phi) grid in
  check_true "no delay detected"
    (not (Biomodels.Ftsz.delay_visible ~phases:grid ~values:no_delay ~threshold:0.02));
  (* A profile that rises again after its peak fails the drop test. *)
  let rebound = Array.map (fun phi -> Float.abs (Float.sin (2.0 *. Float.pi *. phi))) grid in
  check_true "rebound detected"
    (not (Biomodels.Ftsz.post_peak_monotone_drop ~phases:grid ~values:rebound ~tolerance:0.02))

let tests =
  [
    ( "biomodels",
      [
        case "LV period 150 min" test_lv_period;
        case "LV equilibrium" test_lv_equilibrium;
        case "LV amplitudes match Fig 2" test_lv_amplitudes;
        case "LV profile closes" test_lv_profile_closes;
        case "LV invariant" test_lv_conserved_quantity;
        case "Goodwin oscillates at 150 min" test_goodwin_oscillates;
        case "Goodwin phase profile" test_goodwin_profile;
        case "repressilator oscillates" test_repressilator_oscillates;
        case "repressilator phase shifts" test_repressilator_species_shifted;
        case "gene profile family" test_gene_profiles;
        case "delayed pulse" test_delayed_pulse;
        case "profile from samples" test_from_samples;
        case "ftsz profile features" test_ftsz_profile_features;
        case "ftsz conservation consistency" test_ftsz_conservation_consistency;
        case "ftsz detectors reject bad profiles" test_ftsz_detectors_reject_bad_profiles;
      ] );
  ]
