open Numerics
open Testutil

let basis = Spline.Natural.with_uniform_knots ~lo:0.0 ~hi:1.0 ~num_knots:8

let test_size () =
  Alcotest.(check int) "one basis function per knot" 8 basis.Spline.Basis.size;
  check_close "lo" 0.0 basis.Spline.Basis.lo;
  check_close "hi" 1.0 basis.Spline.Basis.hi

let test_contains_constants_and_linear () =
  (* psi_0 = 1, psi_1 = x by construction. *)
  List.iter
    (fun x ->
      check_close ~tol:1e-12 "constant" 1.0 (basis.Spline.Basis.eval 0 x);
      check_close ~tol:1e-12 "linear" x (basis.Spline.Basis.eval 1 x))
    [ 0.0; 0.17; 0.5; 0.99; 1.0 ]

let test_natural_boundary_conditions () =
  (* Natural splines have zero second derivative at both boundary knots. *)
  for i = 0 to basis.Spline.Basis.size - 1 do
    check_close ~tol:1e-9 "f'' at 0" 0.0 (basis.Spline.Basis.deriv2 i 0.0);
    check_close ~tol:1e-9 "f'' at 1" 0.0 (basis.Spline.Basis.deriv2 i 1.0)
  done

let test_derivatives_match_finite_differences () =
  let h = 1e-6 in
  for i = 0 to basis.Spline.Basis.size - 1 do
    List.iter
      (fun x ->
        let f = basis.Spline.Basis.eval i in
        check_close ~tol:1e-4
          (Printf.sprintf "deriv basis %d at %g" i x)
          (fd_deriv f x h) (basis.Spline.Basis.deriv i x);
        check_close ~tol:1e-2
          (Printf.sprintf "deriv2 basis %d at %g" i x)
          (fd_deriv2 f x 1e-4) (basis.Spline.Basis.deriv2 i x))
      (* Stay away from knots where the third derivative jumps. *)
      [ 0.06; 0.2; 0.48; 0.63; 0.91 ]
  done

let test_continuity_at_knots () =
  (* Value, first and second derivative are continuous across each knot. *)
  let eps = 1e-7 in
  let knots = basis.Spline.Basis.breaks in
  for i = 0 to basis.Spline.Basis.size - 1 do
    for k = 1 to Array.length knots - 2 do
      let x = knots.(k) in
      let f = basis.Spline.Basis.eval i in
      check_close ~tol:1e-5 "value continuous" (f (x -. eps)) (f (x +. eps));
      let d = basis.Spline.Basis.deriv i in
      check_close ~tol:1e-4 "deriv continuous" (d (x -. eps)) (d (x +. eps));
      let d2 = basis.Spline.Basis.deriv2 i in
      check_close ~tol:1e-3 "deriv2 continuous" (d2 (x -. eps)) (d2 (x +. eps))
    done
  done

let test_combine () =
  let alpha = Array.init basis.Spline.Basis.size (fun i -> float_of_int i) in
  let x = 0.37 in
  let direct = ref 0.0 in
  for i = 0 to basis.Spline.Basis.size - 1 do
    direct := !direct +. (alpha.(i) *. basis.Spline.Basis.eval i x)
  done;
  check_close ~tol:1e-12 "combine" !direct (Spline.Basis.combine basis alpha x)

let test_design_matrix () =
  let grid = Vec.linspace 0.0 1.0 11 in
  let d = Spline.Basis.design basis grid in
  Alcotest.(check (pair int int)) "design dims" (11, 8) (Mat.dims d);
  check_close ~tol:1e-12 "design entry" (basis.Spline.Basis.eval 3 grid.(5)) (Mat.get d 5 3)

let test_interpolation_power () =
  (* A natural spline basis on K knots can reproduce any function that is
     itself a natural cubic spline; check it can least-squares-fit a smooth
     target closely. *)
  let grid = Vec.linspace 0.0 1.0 101 in
  let target = Array.map (fun x -> Float.sin (2.0 *. Float.pi *. x) +. 2.0) grid in
  let d = Spline.Basis.design basis grid in
  let alpha = Linalg.qr_lstsq d target in
  let fitted = Mat.mv d alpha in
  check_true "smooth target well approximated" (Stats.rmse target fitted < 0.02)

let bspline = Spline.Bspline.create ~lo:0.0 ~hi:1.0 ~num_basis:9

let test_bspline_partition_of_unity () =
  List.iter
    (fun x ->
      let total = ref 0.0 in
      for i = 0 to bspline.Spline.Basis.size - 1 do
        total := !total +. bspline.Spline.Basis.eval i x
      done;
      check_close ~tol:1e-10 (Printf.sprintf "partition of unity at %g" x) 1.0 !total)
    [ 0.0; 0.01; 0.3; 0.5; 0.77; 0.99; 1.0 ]

let test_bspline_nonnegative () =
  for i = 0 to bspline.Spline.Basis.size - 1 do
    for j = 0 to 100 do
      let x = float_of_int j /. 100.0 in
      check_true "bspline nonnegative" (bspline.Spline.Basis.eval i x >= -1e-12)
    done
  done

let test_bspline_endpoint_values () =
  check_close ~tol:1e-12 "first basis at lo" 1.0 (bspline.Spline.Basis.eval 0 0.0);
  check_close ~tol:1e-12 "last basis at hi" 1.0
    (bspline.Spline.Basis.eval (bspline.Spline.Basis.size - 1) 1.0);
  check_close ~tol:1e-12 "others vanish at lo" 0.0 (bspline.Spline.Basis.eval 2 0.0)

let test_bspline_derivative_sum_zero () =
  (* Derivative of the partition of unity is zero. *)
  List.iter
    (fun x ->
      let total = ref 0.0 in
      for i = 0 to bspline.Spline.Basis.size - 1 do
        total := !total +. bspline.Spline.Basis.deriv i x
      done;
      check_close ~tol:1e-9 "derivative sum" 0.0 !total)
    [ 0.1; 0.42; 0.9 ]

let test_bspline_derivatives_fd () =
  let h = 1e-6 in
  for i = 0 to bspline.Spline.Basis.size - 1 do
    List.iter
      (fun x ->
        let f = bspline.Spline.Basis.eval i in
        check_close ~tol:1e-4 "bspline deriv fd" (fd_deriv f x h) (bspline.Spline.Basis.deriv i x);
        check_close ~tol:1e-2 "bspline deriv2 fd" (fd_deriv2 f x 1e-4)
          (bspline.Spline.Basis.deriv2 i x))
      [ 0.055; 0.21; 0.38; 0.61; 0.83 ]
  done

let test_penalty_symmetric_psd () =
  List.iter
    (fun b ->
      let omega = Spline.Penalty.second_derivative b in
      check_true "penalty symmetric" (Mat.is_symmetric ~tol:1e-9 omega);
      let values, _ = Linalg.jacobi_eigen omega in
      Array.iter (fun v -> check_true "penalty PSD" (v > -1e-8)) values)
    [ basis; bspline ]

let test_penalty_annihilates_linear () =
  (* Constant and linear basis members have zero roughness. *)
  let omega = Spline.Penalty.second_derivative basis in
  let e0 = Array.init basis.Spline.Basis.size (fun i -> if i = 0 then 1.0 else 0.0) in
  let e1 = Array.init basis.Spline.Basis.size (fun i -> if i = 1 then 1.0 else 0.0) in
  check_close ~tol:1e-10 "constant roughness" 0.0 (Vec.dot e0 (Mat.mv omega e0));
  check_close ~tol:1e-10 "linear roughness" 0.0 (Vec.dot e1 (Mat.mv omega e1))

let test_penalty_matches_numeric_integral () =
  (* Quadratic form equals a brute-force integral of (f'')^2. *)
  let rng = Rng.create 88 in
  let alpha = Array.init basis.Spline.Basis.size (fun _ -> Rng.uniform rng ~lo:(-1.0) ~hi:1.0) in
  let omega = Spline.Penalty.second_derivative basis in
  let quadratic = Vec.dot alpha (Mat.mv omega alpha) in
  let f2 x =
    let acc = ref 0.0 in
    for i = 0 to basis.Spline.Basis.size - 1 do
      acc := !acc +. (alpha.(i) *. basis.Spline.Basis.deriv2 i x)
    done;
    !acc *. !acc
  in
  let numeric = Integrate.simpson f2 ~a:0.0 ~b:1.0 ~n:20000 in
  check_rel ~tol:1e-5 "penalty = int f''^2" numeric quadratic

let test_gram_matches_numeric () =
  let grid = Vec.linspace 0.0 1.0 2001 in
  let g = Spline.Penalty.gram basis grid in
  check_true "gram symmetric" (Mat.is_symmetric ~tol:1e-9 g);
  (* <1, 1> = 1 over [0,1]. *)
  check_close ~tol:1e-6 "gram constant" 1.0 (Mat.get g 0 0);
  (* <1, x> = 1/2, <x, x> = 1/3. *)
  check_close ~tol:1e-6 "gram <1,x>" 0.5 (Mat.get g 0 1);
  check_close ~tol:1e-6 "gram <x,x>" (1.0 /. 3.0) (Mat.get g 1 1)

let test_knots () =
  check_vec ~tol:1e-12 "uniform knots" [| 0.0; 0.5; 1.0 |] (Spline.Knots.uniform ~lo:0.0 ~hi:1.0 3);
  let samples = [| 1.0; 1.0; 2.0; 3.0; 10.0 |] in
  let q = Spline.Knots.quantile samples 3 in
  check_close "quantile first" 1.0 q.(0);
  check_close "quantile last" 10.0 q.(2);
  check_true "strictly increasing" (q.(0) < q.(1) && q.(1) < q.(2))

let tests =
  [
    ( "spline",
      [
        case "basis size" test_size;
        case "contains constants and linears" test_contains_constants_and_linear;
        case "natural boundary conditions" test_natural_boundary_conditions;
        case "derivatives match finite differences" test_derivatives_match_finite_differences;
        case "C2 continuity at knots" test_continuity_at_knots;
        case "combine" test_combine;
        case "design matrix" test_design_matrix;
        case "approximation power" test_interpolation_power;
        case "bspline partition of unity" test_bspline_partition_of_unity;
        case "bspline nonnegative" test_bspline_nonnegative;
        case "bspline endpoints" test_bspline_endpoint_values;
        case "bspline derivative sum" test_bspline_derivative_sum_zero;
        case "bspline derivatives fd" test_bspline_derivatives_fd;
        case "penalty symmetric PSD" test_penalty_symmetric_psd;
        case "penalty annihilates linears" test_penalty_annihilates_linear;
        case "penalty equals numeric integral" test_penalty_matches_numeric_integral;
        case "gram matrix" test_gram_matches_numeric;
        case "knot placement" test_knots;
      ] );
  ]
