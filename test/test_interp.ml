open Numerics
open Testutil

let test_bracket () =
  let x = [| 0.0; 1.0; 2.0; 4.0 |] in
  Alcotest.(check int) "interior" 1 (Interp.bracket x 1.5);
  Alcotest.(check int) "at knot" 2 (Interp.bracket x 2.0);
  Alcotest.(check int) "below range" 0 (Interp.bracket x (-1.0));
  Alcotest.(check int) "above range" 2 (Interp.bracket x 10.0);
  Alcotest.(check int) "at left edge" 0 (Interp.bracket x 0.0)

let test_linear () =
  let x = [| 0.0; 1.0; 3.0 |] in
  let y = [| 0.0; 2.0; 6.0 |] in
  check_close ~tol:1e-12 "midpoint" 1.0 (Interp.linear ~x ~y 0.5);
  check_close ~tol:1e-12 "second segment" 4.0 (Interp.linear ~x ~y 2.0);
  check_close ~tol:1e-12 "exact at knots" 2.0 (Interp.linear ~x ~y 1.0);
  (* Linear extrapolation continues the edge slope. *)
  check_close ~tol:1e-12 "extrapolate left" (-2.0) (Interp.linear ~x ~y (-1.0));
  check_close ~tol:1e-12 "extrapolate right" 8.0 (Interp.linear ~x ~y 4.0)

let test_linear_clamped () =
  let x = [| 0.0; 1.0 |] and y = [| 5.0; 7.0 |] in
  check_close "clamp left" 5.0 (Interp.linear_clamped ~x ~y (-3.0));
  check_close "clamp right" 7.0 (Interp.linear_clamped ~x ~y 9.0);
  check_close ~tol:1e-12 "interior unchanged" 6.0 (Interp.linear_clamped ~x ~y 0.5)

let test_linear_many () =
  let x = [| 0.0; 2.0 |] and y = [| 0.0; 4.0 |] in
  check_vec ~tol:1e-12 "vectorized" [| 1.0; 2.0; 3.0 |] (Interp.linear_many ~x ~y [| 0.5; 1.0; 1.5 |])

let test_pchip_through_points () =
  let x = [| 0.0; 0.3; 0.7; 1.0 |] in
  let y = [| 1.0; 2.0; 0.5; 3.0 |] in
  let p = Interp.pchip_build ~x ~y in
  Array.iteri
    (fun i xi -> check_close ~tol:1e-12 "interpolates knots" y.(i) (Interp.pchip_eval p xi))
    x

let test_pchip_monotone_no_overshoot () =
  (* Monotone data must give a monotone interpolant (the Fritsch-Carlson
     property); a step-like dataset is the classic overshoot trap. *)
  let x = [| 0.0; 1.0; 2.0; 3.0; 4.0 |] in
  let y = [| 0.0; 0.0; 1.0; 1.0; 1.0 |] in
  let p = Interp.pchip_build ~x ~y in
  let prev = ref (Interp.pchip_eval p 0.0) in
  for i = 1 to 400 do
    let v = Interp.pchip_eval p (4.0 *. float_of_int i /. 400.0) in
    check_true "monotone" (v >= !prev -. 1e-12);
    check_true "within data range" (v >= -1e-12 && v <= 1.0 +. 1e-12);
    prev := v
  done

let test_pchip_clamps_outside () =
  let x = [| 0.0; 1.0 |] and y = [| 2.0; 5.0 |] in
  let p = Interp.pchip_build ~x ~y in
  check_close "clamped left" 2.0 (Interp.pchip_eval p (-1.0));
  check_close "clamped right" 5.0 (Interp.pchip_eval p 2.0)

let test_pchip_two_points_is_linear () =
  let p = Interp.pchip_build ~x:[| 0.0; 2.0 |] ~y:[| 0.0; 4.0 |] in
  check_close ~tol:1e-12 "two-point linear" 2.0 (Interp.pchip_eval p 1.0)

let test_pchip_eval_many () =
  let p = Interp.pchip_build ~x:[| 0.0; 1.0; 2.0 |] ~y:[| 0.0; 1.0; 4.0 |] in
  let out = Interp.pchip_eval_many p [| 0.0; 1.0; 2.0 |] in
  check_vec ~tol:1e-12 "eval many at knots" [| 0.0; 1.0; 4.0 |] out

let prop_pchip_bounded_by_data =
  qcheck ~count:100 "pchip stays within local data range"
    QCheck2.Gen.(array_size (return 6) (float_bound_inclusive 10.0))
    (fun ys ->
      let xs = Array.init 6 float_of_int in
      let p = Interp.pchip_build ~x:xs ~y:ys in
      let lo = Vec.min ys -. 1e-9 and hi = Vec.max ys +. 1e-9 in
      let ok = ref true in
      for i = 0 to 100 do
        let v = Interp.pchip_eval p (5.0 *. float_of_int i /. 100.0) in
        if v < lo || v > hi then ok := false
      done;
      !ok)

let tests =
  [
    ( "interp",
      [
        case "bracket" test_bracket;
        case "linear interpolation" test_linear;
        case "linear clamped" test_linear_clamped;
        case "linear many" test_linear_many;
        case "pchip through points" test_pchip_through_points;
        case "pchip monotone, no overshoot" test_pchip_monotone_no_overshoot;
        case "pchip clamps outside" test_pchip_clamps_outside;
        case "pchip two points" test_pchip_two_points_is_linear;
        case "pchip eval many" test_pchip_eval_many;
        prop_pchip_bounded_by_data;
      ] );
  ]
