open Numerics
open Testutil

let boundaries = Cellpop.Celltype.mid_boundaries

let test_judd_embedded () =
  let obs = Cellpop.Calibrate.judd in
  Alcotest.(check int) "six times" 6 (Array.length obs.Cellpop.Calibrate.times);
  Alcotest.(check (pair int int)) "fraction dims" (6, 4) (Mat.dims obs.Cellpop.Calibrate.fractions);
  for i = 0 to 5 do
    check_close ~tol:1e-9 "rows sum to 1" 1.0 (Vec.sum (Mat.row obs.Cellpop.Calibrate.fractions i))
  done

let test_objective_zero_at_truth_like () =
  (* The objective at the generating parameters (same seed, same n) is 0. *)
  let truth = { Cellpop.Params.paper_2011 with Cellpop.Params.mean_cycle_minutes = 170.0 } in
  let times = [| 60.0; 100.0; 140.0 |] in
  let snapshots = Cellpop.Population.simulate truth ~rng:(Rng.create 7) ~n0:1000 ~times in
  let obs =
    { Cellpop.Calibrate.times;
      fractions = Cellpop.Celltype.fractions_over_time boundaries snapshots }
  in
  check_close ~tol:1e-12 "self objective zero" 0.0
    (Cellpop.Calibrate.objective ~base:truth ~boundaries ~n_cells:1000 ~seed:7 obs truth)

let test_objective_increases_with_mismatch () =
  let truth = Cellpop.Params.paper_2011 in
  let times = [| 60.0; 100.0; 140.0 |] in
  let snapshots = Cellpop.Population.simulate truth ~rng:(Rng.create 7) ~n0:2000 ~times in
  let obs =
    { Cellpop.Calibrate.times;
      fractions = Cellpop.Celltype.fractions_over_time boundaries snapshots }
  in
  let score p = Cellpop.Calibrate.objective ~base:truth ~boundaries ~n_cells:2000 ~seed:7 obs p in
  let near = score truth in
  let far = score { truth with Cellpop.Params.mean_cycle_minutes = 250.0 } in
  check_true "mismatch penalized" (far > (10.0 *. near) +. 1e-4)

let test_self_consistency_fit () =
  (* Generate a fraction time course from known parameters with a different
     seed and cell count than the fitter uses, then recover them. *)
  let truth =
    { Cellpop.Params.paper_2011 with
      Cellpop.Params.mean_cycle_minutes = 180.0;
      cv_cycle = 0.18;
    }
  in
  let times = [| 75.0; 90.0; 105.0; 120.0; 135.0; 150.0 |] in
  let snapshots = Cellpop.Population.simulate truth ~rng:(Rng.create 99) ~n0:10_000 ~times in
  let obs =
    { Cellpop.Calibrate.times;
      fractions = Cellpop.Celltype.fractions_over_time boundaries snapshots }
  in
  let fitted =
    Cellpop.Calibrate.fit ~n_cells:3000 ~base:Cellpop.Params.paper_2011 ~boundaries obs
  in
  check_close ~tol:0.03 "mu_sst recovered" 0.15 fitted.Cellpop.Calibrate.params.Cellpop.Params.mu_sst;
  check_rel ~tol:0.06 "cycle time recovered" 180.0
    fitted.Cellpop.Calibrate.params.Cellpop.Params.mean_cycle_minutes;
  check_close ~tol:0.06 "cv recovered" 0.18 fitted.Cellpop.Calibrate.params.Cellpop.Params.cv_cycle;
  check_true "objective small" (fitted.Cellpop.Calibrate.objective_value < 1e-3)

let test_judd_fit_plausible () =
  let fitted =
    Cellpop.Calibrate.fit ~n_cells:3000 ~max_iter:120 ~base:Cellpop.Params.paper_2011
      ~boundaries Cellpop.Calibrate.judd
  in
  let p = fitted.Cellpop.Calibrate.params in
  (* Minimal-medium Caulobacter grows slowly: cycle in the 2.5-4 hour range. *)
  check_true "cycle time plausible"
    (p.Cellpop.Params.mean_cycle_minutes > 150.0 && p.Cellpop.Params.mean_cycle_minutes < 260.0);
  check_true "transition phase in range"
    (p.Cellpop.Params.mu_sst > 0.05 && p.Cellpop.Params.mu_sst < 0.45);
  check_true "fits the data decently" (fitted.Cellpop.Calibrate.objective_value < 0.01)

let tests =
  [
    ( "calibrate",
      [
        case "judd observation embedded" test_judd_embedded;
        case "objective zero at truth" test_objective_zero_at_truth_like;
        case "objective penalizes mismatch" test_objective_increases_with_mismatch;
        case "self-consistency fit" test_self_consistency_fit;
        case "judd fit plausible" test_judd_fit_plausible;
      ] );
  ]
