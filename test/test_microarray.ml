open Numerics
open Testutil

let test_probe_noiseless () =
  let probe = { Microarray.Probe.gain = 2.0; background = 0.5; noise_cv = 0.0; saturation = 100.0 } in
  let rng = Rng.create 1101 in
  check_close ~tol:1e-12 "affine response" 6.5
    (Microarray.Probe.measure probe rng ~concentration:3.0);
  check_close "saturation" 100.0 (Microarray.Probe.measure probe rng ~concentration:1e6)

let test_probe_noise_unbiased () =
  let probe = { Microarray.Probe.gain = 1.0; background = 0.0; noise_cv = 0.2; saturation = Float.infinity } in
  let rng = Rng.create 1102 in
  let xs = Array.init 30_000 (fun _ -> Microarray.Probe.measure probe rng ~concentration:10.0) in
  check_close ~tol:0.1 "lognormal noise mean-preserving" 10.0 (Stats.mean xs);
  check_close ~tol:0.02 "noise cv" 0.2 (Stats.cv xs)

let test_probe_draw_distribution () =
  let rng = Rng.create 1103 in
  let gains = Array.init 20_000 (fun _ -> (Microarray.Probe.draw rng).Microarray.Probe.gain) in
  check_close ~tol:0.02 "mean gain ~1" 1.0 (Stats.mean gains);
  check_close ~tol:0.03 "gain cv" 0.3 (Stats.cv gains)

let test_background_correct () =
  let m = Mat.of_rows [| [| 10.0; 20.0 |]; [| 11.0; 21.0 |]; [| 30.0; 40.0 |]; [| 12.0; 22.0 |] |] in
  let corrected = Microarray.Normalize.background_correct ~percentile:0.0 m in
  (* Column minima become the background. *)
  check_close "min removed col0" 0.0 (Mat.get corrected 0 0);
  check_close "col1 shift" 0.0 (Mat.get corrected 0 1);
  check_close "values shifted" 20.0 (Mat.get corrected 2 0);
  (* All entries nonnegative. *)
  Array.iter (fun v -> check_true "nonneg" (v >= 0.0)) corrected.Mat.data

let test_median_scale_aligns () =
  let m = Mat.of_rows [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |]; [| 3.0; 6.0 |] |] in
  let scaled = Microarray.Normalize.median_scale m in
  (* Column medians equalized. *)
  check_close ~tol:1e-12 "medians equal" (Stats.median (Mat.col scaled 0))
    (Stats.median (Mat.col scaled 1));
  (* Within-column ratios preserved. *)
  check_rel ~tol:1e-12 "shape preserved" 3.0 (Mat.get scaled 2 0 /. Mat.get scaled 0 0)

let test_quantile_normalization () =
  let m = Mat.of_rows [| [| 5.0; 50.0 |]; [| 2.0; 20.0 |]; [| 3.0; 90.0 |] |] in
  let q = Microarray.Normalize.quantile m in
  (* After quantile normalization both columns have identical sorted values. *)
  let sorted j =
    let c = Mat.col q j in
    Array.sort compare c;
    c
  in
  check_vec ~tol:1e-12 "identical distributions" (sorted 0) (sorted 1);
  (* Ranks preserved: row 0 is the largest in column 0. *)
  check_true "rank preserved col0" (Mat.get q 0 0 > Mat.get q 1 0);
  check_true "rank preserved col1" (Mat.get q 2 1 > Mat.get q 0 1)

let test_log2 () =
  let m = Mat.of_rows [| [| 1.0; 3.0 |] |] in
  let l = Microarray.Normalize.log2 m in
  check_close ~tol:1e-12 "log2(1+1)" 1.0 (Mat.get l 0 0);
  check_close ~tol:1e-12 "log2(3+1)" 2.0 (Mat.get l 0 1)

let make_timecourse seed =
  let times = Array.init 9 (fun i -> 20.0 *. float_of_int i) in
  let true_signals =
    Mat.of_rows
      [|
        Array.map (fun t -> 2.0 +. Float.sin (t /. 30.0)) times;
        Array.map (fun t -> 5.0 +. (2.0 *. Float.cos (t /. 40.0))) times;
        Array.map (fun _ -> 3.0) times;
      |]
  in
  let rng = Rng.create seed in
  let raw =
    Microarray.Timecourse.simulate ~replicates:4 rng ~gene_names:[| "g1"; "g2"; "g3" |] ~times
      ~true_signals
  in
  (times, true_signals, raw)

let test_timecourse_shapes () =
  let times, _, raw = make_timecourse 1104 in
  Alcotest.(check int) "replicates" 4 (Array.length raw.Microarray.Timecourse.replicates);
  (* 3 genes + 8 default control spots per chip. *)
  Alcotest.(check (pair int int)) "chip dims" (11, 9)
    (Mat.dims raw.Microarray.Timecourse.replicates.(0));
  check_vec "times kept" times raw.Microarray.Timecourse.times;
  Alcotest.(check int) "one probe per row" 11 (Array.length raw.Microarray.Timecourse.probes);
  (* Control spots measure (scaled) background only: far below gene spots. *)
  let chip = raw.Microarray.Timecourse.replicates.(0) in
  let gene_mean = Stats.mean (Mat.row chip 1) in
  let control_mean = Stats.mean (Mat.row chip 8) in
  check_true "controls are dim" (control_mean < 0.3 *. gene_mean)

let test_processed_dims_drop_controls () =
  let _, _, raw = make_timecourse 1108 in
  let processed = Microarray.Timecourse.process raw in
  Alcotest.(check (pair int int)) "controls dropped" (3, 9)
    (Mat.dims processed.Microarray.Timecourse.estimates)

let test_processing_recovers_shapes () =
  let _, true_signals, raw = make_timecourse 1105 in
  let processed = Microarray.Timecourse.process raw in
  (* Per-gene shape (up to scale) should correlate strongly with truth. *)
  for g = 0 to 1 do
    let truth = Mat.row true_signals g in
    let estimate = Mat.row processed.Microarray.Timecourse.estimates g in
    check_true
      (Printf.sprintf "gene %d shape recovered" g)
      (Stats.correlation truth estimate > 0.9)
  done

let test_processing_sigmas_positive () =
  let _, _, raw = make_timecourse 1106 in
  let processed = Microarray.Timecourse.process raw in
  Array.iter (fun s -> check_true "positive sigma" (s > 0.0))
    processed.Microarray.Timecourse.sigmas.Mat.data

let test_gene_measurements_accessor () =
  let _, _, raw = make_timecourse 1107 in
  let processed = Microarray.Timecourse.process raw in
  let g, s = Microarray.Timecourse.gene_measurements processed ~gene:1 in
  Alcotest.(check int) "g length" 9 (Array.length g);
  Alcotest.(check int) "sigma length" 9 (Array.length s);
  check_vec "matches matrix row" (Mat.row processed.Microarray.Timecourse.estimates 1) g

let test_deterministic () =
  let _, _, raw_a = make_timecourse 7 in
  let _, _, raw_b = make_timecourse 7 in
  check_true "same raw data"
    (Mat.approx_equal ~tol:0.0 raw_a.Microarray.Timecourse.replicates.(0)
       raw_b.Microarray.Timecourse.replicates.(0))

let tests =
  [
    ( "microarray",
      [
        case "probe noiseless response" test_probe_noiseless;
        case "probe noise unbiased" test_probe_noise_unbiased;
        case "probe draw distribution" test_probe_draw_distribution;
        case "background correction" test_background_correct;
        case "median scaling" test_median_scale_aligns;
        case "quantile normalization" test_quantile_normalization;
        case "log2 transform" test_log2;
        case "timecourse shapes" test_timecourse_shapes;
        case "processing drops controls" test_processed_dims_drop_controls;
        case "processing recovers shapes" test_processing_recovers_shapes;
        case "sigmas positive" test_processing_sigmas_positive;
        case "gene accessor" test_gene_measurements_accessor;
        case "deterministic" test_deterministic;
      ] );
  ]
