(* deconv-cli: command-line interface to the deconvolution library.

   Subcommands:
     simulate        generate population-level data from a built-in single-cell profile
     deconvolve      estimate a single-cell profile from a measurements CSV
     batch           survivable genome-scale batch with fault isolation, budgets and
                     crash-safe --checkpoint/--resume (exit 3 on contained failures)
     chaos           fault-injection harness asserting the batch isolation invariants
     kernel          dump the population kernel Q(phi, t) as CSV
     celltypes       print simulated cell-type fractions over time
     identifiability singular spectrum of the forward operator for a schedule
     schedule        D-optimal measurement times for a sampling budget
     trace           summarize / convergence-plot / utilization / export / selfcheck traces
     bench           compare the newest benchmark records against a baseline
*)

open Numerics
open Cmdliner

(* ---------------- shared arguments ---------------- *)

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed (deterministic).")

let jobs_arg =
  Arg.(value & opt int 0
       & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Worker domains for the parallel sections (population simulation, lambda \
                 sweeps, bootstrap). 0 = auto: $(b,DECONV_JOBS) if set, else the machine's \
                 recommended domain count. Results are bit-identical for every value; \
                 $(b,--jobs 1) runs the exact same schedule sequentially without spawning \
                 any domain.")

let apply_jobs jobs =
  if jobs > 0 then Parallel.set_jobs jobs
  else if jobs < 0 then begin
    Printf.eprintf "error: --jobs must be >= 1 (or 0 for auto), got %d\n" jobs;
    exit 1
  end

let cells_arg =
  Arg.(value & opt int 4000 & info [ "cells" ] ~docv:"N" ~doc:"Number of simulated founder cells.")

let phi_bins_arg =
  Arg.(value & opt int 201 & info [ "phi-bins" ] ~docv:"N" ~doc:"Number of phase bins.")

let knots_arg =
  Arg.(value & opt int 12 & info [ "knots" ] ~docv:"N" ~doc:"Natural-spline knots (basis size).")

let times_arg =
  let doc = "Measurement times in minutes, comma separated (default 0,15,...,180)." in
  Arg.(value & opt (some string) None & info [ "times" ] ~docv:"T1,T2,..." ~doc)

let parse_times = function
  | None -> Dataio.Datasets.lv_measurement_times
  | Some s ->
    let fields = String.split_on_char ',' s in
    Vec.of_list (List.map (fun f -> float_of_string (String.trim f)) fields)

let mu_sst_arg =
  Arg.(value & opt float 0.15
       & info [ "mu-sst" ] ~docv:"PHI" ~doc:"Mean SW->ST transition phase (paper 2011: 0.15).")

let cycle_arg =
  Arg.(value & opt float 150.0
       & info [ "cycle" ] ~docv:"MIN" ~doc:"Mean cell cycle time in minutes.")

let linear_volume_arg =
  Arg.(value & flag
       & info [ "linear-volume" ] ~doc:"Use the 2009 linear volume model instead of eq. 11.")

let params_of mu_sst cycle linear =
  {
    Cellpop.Params.paper_2011 with
    Cellpop.Params.mu_sst;
    mean_cycle_minutes = cycle;
    volume_model = (if linear then Cellpop.Params.Linear else Cellpop.Params.Smooth);
  }

let profile_arg =
  let doc =
    "Built-in single-cell profile: lv-x1, lv-x2, ftsz, goodwin, pulse or constant."
  in
  Arg.(value & opt string "pulse" & info [ "profile" ] ~docv:"NAME" ~doc)

let resolve_profile = function
  | "pulse" -> Biomodels.Gene_profile.gaussian_pulse ~center:0.5 ~width:0.12 ~height:4.0 ()
  | "constant" -> Biomodels.Gene_profile.constant 1.0
  | "ftsz" -> Biomodels.Ftsz.profile
  | "goodwin" ->
    let phases, values =
      Biomodels.Goodwin.phase_profile Biomodels.Goodwin.default_params
        ~x0:Biomodels.Goodwin.default_x0 ~n_phi:400
    in
    fun phi -> Interp.linear_clamped ~x:phases ~y:values phi
  | ("lv-x1" | "lv-x2") as which ->
    let phases, f1, f2 =
      Biomodels.Lotka_volterra.phase_profiles Biomodels.Lotka_volterra.default_params
        ~x0:Biomodels.Lotka_volterra.default_x0 ~n_phi:400
    in
    let values = if which = "lv-x1" then f1 else f2 in
    fun phi -> Interp.linear_clamped ~x:phases ~y:values phi
  | other -> failwith (Printf.sprintf "unknown profile %S" other)

let output_arg =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output CSV path.")

let noise_arg =
  Arg.(value & opt float 0.0
       & info [ "noise" ] ~docv:"FRAC" ~doc:"Gaussian noise level as a fraction of magnitude.")

(* ---------------- simulate ---------------- *)

let simulate jobs profile_name times seed cells phi_bins mu_sst cycle linear noise output =
  apply_jobs jobs;
  let times = parse_times times in
  let params = params_of mu_sst cycle linear in
  let profile = resolve_profile profile_name in
  let rng = Rng.create seed in
  let snapshots = Cellpop.Population.simulate params ~rng:(Rng.split rng) ~n0:cells ~times in
  let clean =
    Array.map (Cellpop.Population.mean_signal params (fun ~phi -> profile phi)) snapshots
  in
  let noise_model =
    if noise > 0.0 then Deconv.Noise.Gaussian_fraction noise else Deconv.Noise.No_noise
  in
  let noisy, sigmas = Deconv.Noise.apply noise_model (Rng.split rng) clean in
  ignore phi_bins;
  (match output with
  | Some path ->
    Dataio.Csv.write_columns ~path ~header:[ "minutes"; "g"; "sigma" ]
      ~columns:[ times; noisy; sigmas ];
    Printf.printf "wrote %d measurements to %s\n" (Array.length times) path
  | None ->
    let t = Dataio.Table.create ~title:"simulated population data"
        ~headers:[ "minutes"; "g"; "sigma" ] in
    Dataio.Table.add_rows t [ times; noisy; sigmas ];
    Dataio.Table.output stdout t);
  0

let simulate_cmd =
  let term =
    Term.(
      const simulate $ jobs_arg $ profile_arg $ times_arg $ seed_arg $ cells_arg $ phi_bins_arg
      $ mu_sst_arg $ cycle_arg $ linear_volume_arg $ noise_arg $ output_arg)
  in
  Cmd.v (Cmd.info "simulate" ~doc:"Generate population-level data from a single-cell profile.")
    term

(* ---------------- deconvolve ---------------- *)

let lambda_arg =
  Arg.(value & opt (some float) None
       & info [ "lambda" ] ~docv:"L" ~doc:"Fixed smoothing parameter (default: select by GCV).")

let no_positivity = Arg.(value & flag & info [ "no-positivity" ] ~doc:"Drop the positivity constraint.")
let no_conservation = Arg.(value & flag & info [ "no-conservation" ] ~doc:"Drop division conservation.")
let no_rate = Arg.(value & flag & info [ "no-rate-continuity" ] ~doc:"Drop rate continuity (sec 3.2).")

let bootstrap_arg =
  Arg.(value & opt int 0
       & info [ "bootstrap" ] ~docv:"B"
           ~doc:"Number of residual-bootstrap replicates for 90% bands (0 = off).")

let input_arg =
  Arg.(required & pos 0 (some file) None
       & info [] ~docv:"MEASUREMENTS.CSV" ~doc:"CSV with columns minutes,g[,sigma].")

let kernel_file_arg =
  Arg.(value & opt (some file) None
       & info [ "kernel" ] ~docv:"FILE"
           ~doc:"Reuse a kernel saved with `kernel --save` instead of simulating one.")

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write a JSONL observability trace (spans + metrics) to $(docv); render it \
                 with `deconv-cli trace summarize $(docv)`.")

let metrics_flag_arg =
  Arg.(value & flag
       & info [ "metrics" ] ~doc:"Print the counter/gauge/histogram summary after the run.")

(* lib/parallel is zero-dependency by design and cannot see the obs layer;
   chunk telemetry is injected from here instead. One sample per executed
   chunk, emitted through the mutex-serialized sink — safe from worker
   domains, and a no-op branch when tracing is off. *)
let chunk_probe =
  {
    Parallel.Probe.now = Obs.Clock.now;
    record =
      (fun ~domain ~lo ~hi ~start_s ~stop_s ->
        Obs.Export.emit
          (Obs.Export.Sample
             {
               Obs.Export.s_kind = "chunk";
               t_s = stop_s;
               values =
                 [
                   ("domain", float_of_int domain);
                   ("lo", float_of_int lo);
                   ("hi", float_of_int hi);
                   ("start", start_s);
                   ("stop", stop_s);
                 ];
             }));
  }

let read_trace_file file =
  let ic = open_in file in
  let events = Obs.Export.read_jsonl ic in
  close_in ic;
  events

let run_deconvolve input seed cells phi_bins knots mu_sst cycle linear lambda no_pos no_cons
    no_rate bootstrap kernel_file output =
  Obs.Span.with_ "deconvolve" @@ fun cli_span ->
  Obs.Span.set_str cli_span "input" input;
  let times, g, sigmas =
    match Dataio.Datasets.load_measurements ~path:input with
    | Ok r -> r
    | Error e ->
      Printf.eprintf "error: %s: %s\n" input (Dataio.Csv.error_to_string e);
      exit 1
  in
  let params = params_of mu_sst cycle linear in
  let rng = Rng.create seed in
  let kernel =
    match kernel_file with
    | Some path ->
      let k = Cellpop.Kernel.load ~path in
      let kt = k.Cellpop.Kernel.times in
      if Array.length kt <> Array.length times then
        failwith "saved kernel has a different number of time points than the measurements";
      Array.iteri
        (fun i t ->
          if Float.abs (t -. kt.(i)) > 1e-6 then
            failwith
              (Printf.sprintf "saved kernel time %g does not match measurement time %g" kt.(i) t))
        times;
      k
    | None ->
      Cellpop.Kernel.estimate ~smooth_window:5 params ~rng:(Rng.split rng) ~n_cells:cells ~times
        ~n_phi:phi_bins
  in
  let basis = Spline.Natural.with_uniform_knots ~lo:0.0 ~hi:1.0 ~num_knots:knots in
  let problem =
    Deconv.Problem.create ~use_positivity:(not no_pos) ~use_conservation:(not no_cons)
      ~use_rate_continuity:(not no_rate) ?sigmas ~kernel ~basis ~measurements:g ~params ()
  in
  (* Lambda selection, adequacy diagnostics and bootstrap all run on the
     repaired copy: a single NaN measurement or zero sigma would poison
     every candidate score and every weighted residual. The original
     problem goes to solve_robust so its report records the repairs. *)
  let repaired_problem, _ = Deconv.Solver.repair_problem problem in
  let lambda =
    match lambda with
    | Some l -> l
    | None -> (
      match Deconv.Lambda.select_result repaired_problem ~method_:`Gcv ~rng:(Rng.split rng) () with
      | Ok l -> l
      | Error e ->
        Printf.eprintf "warning: lambda selection failed (%s); using lambda = 1e-4\n"
          (Robust.Error.to_string e);
        1e-4)
  in
  let estimate, robust_report =
    match Deconv.Solver.solve_robust ~lambda problem with
    | Ok (estimate, report) -> (estimate, report)
    | Error e ->
      Printf.eprintf "error: deconvolution failed: %s\n" (Robust.Error.to_string e);
      exit 1
  in
  Printf.printf "lambda = %.4g, weighted misfit = %.4g, roughness = %.4g, active bounds = %d\n"
    lambda estimate.Deconv.Solver.data_misfit estimate.Deconv.Solver.roughness
    estimate.Deconv.Solver.active_positivity;
  if robust_report.Robust.Report.degradation > 0 || robust_report.Robust.Report.repairs <> []
  then Printf.printf "robustness: %s\n" (Robust.Report.to_string robust_report);
  (if sigmas <> None then begin
     (* With real per-measurement sigmas the lack-of-fit test is meaningful. *)
     let report = Deconv.Diagnostics.analyze repaired_problem estimate in
     Printf.printf "model adequacy: %s -> %s\n"
       (Deconv.Diagnostics.to_string report)
       (if Deconv.Diagnostics.adequate report then "OK"
        else "REJECTED (check kernel parameters and sigma column)")
   end);
  let minutes = Array.map (fun phi -> phi *. cycle) kernel.Cellpop.Kernel.phases in
  let bands =
    if bootstrap > 0 then begin
      let b =
        Deconv.Bootstrap.residual ~replicates:bootstrap ~level:0.9 repaired_problem estimate
          ~rng:(Rng.split rng)
      in
      Printf.printf "bootstrap (%d replicates): mean 90%% band width %.4g\n" bootstrap
        (Vec.mean (Deconv.Bootstrap.width b));
      Some b
    end
    else None
  in
  (match output with
  | Some path ->
    let header, columns =
      match bands with
      | None ->
        ( [ "phi"; "minutes"; "f" ],
          [ kernel.Cellpop.Kernel.phases; minutes; estimate.Deconv.Solver.profile ] )
      | Some b ->
        ( [ "phi"; "minutes"; "f"; "lower90"; "upper90" ],
          [ kernel.Cellpop.Kernel.phases; minutes; estimate.Deconv.Solver.profile;
            b.Deconv.Bootstrap.lower; b.Deconv.Bootstrap.upper ] )
    in
    Dataio.Csv.write_columns ~path ~header ~columns;
    Printf.printf "wrote deconvolved profile (%d points) to %s\n"
      (Array.length kernel.Cellpop.Kernel.phases) path
  | None ->
    Dataio.Ascii_plot.output stdout ~title:"deconvolved single-cell profile"
      ([
         { Dataio.Ascii_plot.label = "f(phi), minutes axis"; glyph = 'o'; xs = minutes;
           ys = estimate.Deconv.Solver.profile };
       ]
      @
      match bands with
      | None -> []
      | Some b ->
        [
          { Dataio.Ascii_plot.label = "90% lower"; glyph = '.'; xs = minutes;
            ys = b.Deconv.Bootstrap.lower };
          { Dataio.Ascii_plot.label = "90% upper"; glyph = '\''; xs = minutes;
            ys = b.Deconv.Bootstrap.upper };
        ]));
  0

let deconvolve jobs input seed cells phi_bins knots mu_sst cycle linear lambda no_pos no_cons
    no_rate bootstrap kernel_file trace metrics output =
  apply_jobs jobs;
  let trace_channel =
    match trace with
    | None -> None
    | Some path ->
      let oc = open_out path in
      Obs.Export.install (Obs.Export.jsonl oc);
      Some (path, oc)
  in
  if metrics || Option.is_some trace then Obs.Metrics.enable ();
  let code =
    run_deconvolve input seed cells phi_bins knots mu_sst cycle linear lambda no_pos no_cons
      no_rate bootstrap kernel_file output
  in
  (match trace_channel with
  | Some (path, oc) ->
    (* Append the metrics snapshot to the same stream, so a trace file is
       self-contained: spans first (in close order), metrics last. *)
    List.iter Obs.Export.emit (Obs.Metrics.events ());
    Obs.Export.uninstall ();
    close_out oc;
    Printf.printf "wrote observability trace to %s\n" path
  | None -> ());
  if metrics then Obs.Metrics.output stdout;
  code

let deconvolve_cmd =
  let term =
    Term.(
      const deconvolve $ jobs_arg $ input_arg $ seed_arg $ cells_arg $ phi_bins_arg $ knots_arg
      $ mu_sst_arg $ cycle_arg $ linear_volume_arg $ lambda_arg $ no_positivity $ no_conservation
      $ no_rate $ bootstrap_arg $ kernel_file_arg $ trace_arg $ metrics_flag_arg $ output_arg)
  in
  Cmd.v
    (Cmd.info "deconvolve"
       ~doc:"Estimate the single-cell expression profile behind a population time course.")
    term

(* ---------------- kernel ---------------- *)

let kernel_cmd =
  let save_arg =
    Arg.(value & opt (some string) None
         & info [ "save" ] ~docv:"FILE"
             ~doc:"Save the kernel in the loadable format for `deconvolve --kernel`.")
  in
  let run jobs times seed cells phi_bins mu_sst cycle linear save output =
    apply_jobs jobs;
    let times = parse_times times in
    let params = params_of mu_sst cycle linear in
    let kernel =
      Cellpop.Kernel.estimate ~smooth_window:5 params ~rng:(Rng.create seed) ~n_cells:cells
        ~times ~n_phi:phi_bins
    in
    (match save with
    | Some path ->
      Cellpop.Kernel.save kernel ~path;
      Printf.printf "saved reusable kernel to %s\n" path
    | None -> ());
    (match output with
    | Some path ->
      let header =
        "phi" :: List.map (fun t -> Printf.sprintf "t%g" t) (Array.to_list times)
      in
      let columns =
        kernel.Cellpop.Kernel.phases
        :: List.init (Array.length times) (fun m -> Cellpop.Kernel.row kernel m)
      in
      Dataio.Csv.write_columns ~path ~header ~columns;
      Printf.printf "wrote kernel (%d phases x %d times) to %s\n" phi_bins (Array.length times)
        path
    | None ->
      Printf.printf "kernel normalization error: %.2e\n" (Cellpop.Kernel.check_normalization kernel);
      Array.iteri
        (fun m t ->
          let row = Cellpop.Kernel.row kernel m in
          let mode = kernel.Cellpop.Kernel.phases.(Vec.argmax row) in
          Printf.printf "t = %6.1f min: mode of Q at phi = %.3f, max = %.3f\n" t mode
            (Vec.max row))
        times);
    0
  in
  let term =
    Term.(
      const run $ jobs_arg $ times_arg $ seed_arg $ cells_arg $ phi_bins_arg $ mu_sst_arg
      $ cycle_arg $ linear_volume_arg $ save_arg $ output_arg)
  in
  Cmd.v (Cmd.info "kernel" ~doc:"Estimate and inspect the population kernel Q(phi, t).") term

(* ---------------- celltypes ---------------- *)

let celltypes_cmd =
  let run jobs times seed cells mu_sst cycle linear =
    apply_jobs jobs;
    let times =
      match times with None -> Dataio.Datasets.judd_times | Some _ -> parse_times times
    in
    let params = params_of mu_sst cycle linear in
    let snapshots =
      Cellpop.Population.simulate params ~rng:(Rng.create seed) ~n0:cells ~times
    in
    let f = Cellpop.Celltype.fractions_over_time Cellpop.Celltype.mid_boundaries snapshots in
    let t =
      Dataio.Table.create ~title:"cell-type fractions (mid boundaries)"
        ~headers:[ "minutes"; "SW"; "STE"; "STEPD"; "STLPD" ]
    in
    Dataio.Table.add_rows t [ times; Mat.col f 0; Mat.col f 1; Mat.col f 2; Mat.col f 3 ];
    Dataio.Table.output stdout t;
    0
  in
  let term =
    Term.(
      const run $ jobs_arg $ times_arg $ seed_arg $ cells_arg $ mu_sst_arg $ cycle_arg
      $ linear_volume_arg)
  in
  Cmd.v (Cmd.info "celltypes" ~doc:"Simulate the cell-type distribution over time (fig 4).") term

(* ---------------- identifiability ---------------- *)

let identifiability_cmd =
  let run jobs times seed cells phi_bins knots mu_sst cycle linear =
    apply_jobs jobs;
    let times = parse_times times in
    let params = params_of mu_sst cycle linear in
    let kernel =
      Cellpop.Kernel.estimate ~smooth_window:5 params ~rng:(Rng.create seed) ~n_cells:cells
        ~times ~n_phi:phi_bins
    in
    let basis = Spline.Natural.with_uniform_knots ~lo:0.0 ~hi:1.0 ~num_knots:knots in
    let report = Deconv.Identifiability.analyze kernel basis in
    Printf.printf "singular values: %s\n"
      (String.concat " "
         (Array.to_list
            (Array.map (Printf.sprintf "%.3g") report.Deconv.Identifiability.singular_values)));
    Printf.printf "condition number: %.3g\n" report.Deconv.Identifiability.condition;
    List.iter
      (fun noise ->
        Printf.printf "identifiable modes at %.1f%% relative noise: %d\n" (100.0 *. noise)
          (Deconv.Identifiability.effective_rank report ~relative_noise:noise))
      [ 0.001; 0.01; 0.1 ];
    0
  in
  let term =
    Term.(
      const run $ jobs_arg $ times_arg $ seed_arg $ cells_arg $ phi_bins_arg $ knots_arg
      $ mu_sst_arg $ cycle_arg $ linear_volume_arg)
  in
  Cmd.v
    (Cmd.info "identifiability"
       ~doc:"Singular spectrum of the forward operator for a measurement schedule.")
    term

(* ---------------- schedule ---------------- *)

let schedule_cmd =
  let budget_arg =
    Arg.(value & opt int 9 & info [ "budget" ] ~docv:"N" ~doc:"Number of samples to place.")
  in
  let horizon_arg =
    Arg.(value & opt float 180.0 & info [ "horizon" ] ~docv:"MIN" ~doc:"Experiment length, minutes.")
  in
  let step_arg =
    Arg.(value & opt float 5.0 & info [ "step" ] ~docv:"MIN" ~doc:"Candidate-time spacing.")
  in
  let run jobs budget horizon step seed cells phi_bins knots mu_sst cycle linear =
    apply_jobs jobs;
    let params = params_of mu_sst cycle linear in
    let n_candidates = (int_of_float (horizon /. step)) + 1 in
    let pool = Array.init n_candidates (fun i -> step *. float_of_int i) in
    let basis = Spline.Natural.with_uniform_knots ~lo:0.0 ~hi:1.0 ~num_knots:knots in
    let candidate =
      Deconv.Schedule.candidates params ~rng:(Rng.create seed) ~n_cells:cells ~times:pool
        ~n_phi:phi_bins ~basis
    in
    let chosen = Deconv.Schedule.greedy candidate ~budget in
    let chosen_times = Deconv.Schedule.times_of candidate chosen in
    Printf.printf "D-optimal schedule (%d samples over %.0f minutes):\n  %s\n" budget horizon
      (String.concat ", " (Array.to_list (Array.map (Printf.sprintf "%g") chosen_times)));
    Printf.printf "log-det information: %.3f\n"
      (Deconv.Schedule.log_det_information candidate.Deconv.Schedule.design ~rows:chosen
         ~ridge:1e-8);
    0
  in
  let term =
    Term.(
      const run $ jobs_arg $ budget_arg $ horizon_arg $ step_arg $ seed_arg $ cells_arg
      $ phi_bins_arg $ knots_arg $ mu_sst_arg $ cycle_arg $ linear_volume_arg)
  in
  Cmd.v
    (Cmd.info "schedule" ~doc:"Choose D-optimal measurement times for a sampling budget.")
    term

(* ---------------- calibrate ---------------- *)

let calibrate_cmd =
  let input_arg =
    Arg.(value & pos 0 (some file) None
         & info [] ~docv:"FRACTIONS.CSV"
             ~doc:"CSV with columns minutes,SW,STE,STEPD,STLPD (default: embedded Judd data).")
  in
  let run jobs input seed cells =
    apply_jobs jobs;
    let observation =
      match input with
      | None -> Cellpop.Calibrate.judd
      | Some path ->
        let _, columns =
          match Dataio.Csv.read_columns_result ~path with
          | Ok r -> r
          | Error e ->
            Printf.eprintf "error: %s: %s\n" path (Dataio.Csv.error_to_string e);
            exit 1
        in
        (match columns with
        | [ t; sw; ste; stepd; stlpd ] ->
          { Cellpop.Calibrate.times = t;
            fractions =
              Mat.init (Array.length t) 4 (fun i j ->
                  match j with 0 -> sw.(i) | 1 -> ste.(i) | 2 -> stepd.(i) | _ -> stlpd.(i)) }
        | cols ->
          Printf.eprintf "error: %s: expected 5 columns (minutes,SW,STE,STEPD,STLPD), found %d\n"
            path (List.length cols);
          exit 1)
    in
    let fitted =
      Cellpop.Calibrate.fit ~n_cells:cells ~seed ~base:Cellpop.Params.paper_2011
        ~boundaries:Cellpop.Celltype.mid_boundaries observation
    in
    let p = fitted.Cellpop.Calibrate.params in
    Printf.printf "fitted asynchrony parameters (%d simulator evaluations):\n"
      fitted.Cellpop.Calibrate.evaluations;
    Printf.printf "  mu_sst             = %.4f\n" p.Cellpop.Params.mu_sst;
    Printf.printf "  mean cycle time    = %.1f min\n" p.Cellpop.Params.mean_cycle_minutes;
    Printf.printf "  cycle-time CV      = %.4f\n" p.Cellpop.Params.cv_cycle;
    Printf.printf "  rms fraction error = %.4f\n" (sqrt fitted.Cellpop.Calibrate.objective_value);
    Printf.printf
      "use these with `deconvolve --mu-sst %.4f --cycle %.1f` for data from this culture\n"
      p.Cellpop.Params.mu_sst p.Cellpop.Params.mean_cycle_minutes;
    0
  in
  let term = Term.(const run $ jobs_arg $ input_arg $ seed_arg $ cells_arg) in
  Cmd.v
    (Cmd.info "calibrate"
       ~doc:"Fit the asynchrony model to a cell-type fraction time course.")
    term

(* ---------------- trace ---------------- *)

let trace_summarize_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"TRACE.JSONL" ~doc:"Trace written by `deconvolve --trace`.")
  in
  let top_arg =
    Arg.(value & opt (some int) None
         & info [ "top" ] ~docv:"N"
             ~doc:"Also print the flat top-$(docv) span names by total wall time \
                   (call count, total and self time); 0 prints every name.")
  in
  let run file top =
    let ic = open_in file in
    let events = Obs.Export.read_jsonl ic in
    close_in ic;
    match events with
    | Ok events ->
      Obs.Export.output_summary stdout events;
      (match top with
      | Some n ->
        print_newline ();
        Obs.Export.output_top stdout ~top:n events
      | None -> ());
      0
    | Error msg ->
      Printf.eprintf "error: %s: %s\n" file msg;
      1
  in
  Cmd.v
    (Cmd.info "summarize"
       ~doc:"Render a JSONL trace as an aggregated span tree with a metrics table.")
    Term.(const run $ file_arg $ top_arg)

(* ---------------- trace convergence ---------------- *)

(* Per-iteration telemetry points grouped per enclosing solve span, plotted
   as residual-vs-iteration curves. The iteration count shown per solve is
   the point count, which the emitters keep equal to the solver's own
   [iterations] result. *)
let trace_convergence_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"TRACE.JSONL" ~doc:"Trace written by `deconvolve --trace`.")
  in
  let series_arg =
    Arg.(value & opt (some string) None
         & info [ "series" ] ~docv:"NAME"
             ~doc:"Only plot this telemetry series (e.g. qp.iteration or rl.iteration).")
  in
  let run file only_series =
    let ic = open_in file in
    let events = Obs.Export.read_jsonl ic in
    close_in ic;
    match events with
    | Error msg ->
      Printf.eprintf "error: %s: %s\n" file msg;
      1
    | Ok events ->
      let points =
        List.filter_map (function Obs.Export.Point p -> Some p | _ -> None) events
      in
      let points =
        match only_series with
        | None -> points
        | Some s -> List.filter (fun p -> String.equal p.Obs.Export.series s) points
      in
      let span_by_id id =
        List.find_map
          (function
            | Obs.Export.Span s when s.Obs.Export.id = id -> Some s
            | _ -> None)
          events
      in
      (* Group points by (series, enclosing span), preserving first-seen
         order so curves print in solve order. *)
      let groups = ref [] in
      List.iter
        (fun (p : Obs.Export.point) ->
          let key = (p.Obs.Export.series, p.Obs.Export.span_id) in
          match List.assoc_opt key !groups with
          | Some cell -> cell := p :: !cell
          | None -> groups := !groups @ [ (key, ref [ p ]) ])
        points;
      if !groups = [] then begin
        Printf.printf
          "no convergence telemetry in %s (record the trace with `deconvolve --trace`)\n" file;
        0
      end
      else begin
        List.iter
          (fun ((series, span_id), cell) ->
            let pts : Obs.Export.point list = List.rev !cell in
            (* The plotted quantity: residual-like field of the series. *)
            let value_key =
              let has k =
                match pts with
                | p :: _ -> List.mem_assoc k p.Obs.Export.values
                | [] -> false
              in
              if has "kkt_residual" then "kkt_residual"
              else if has "rel_change" then "rel_change"
              else
                match pts with
                | { Obs.Export.values = (k, _) :: _; _ } :: _ -> k
                | _ -> ""
            in
            let xs =
              Array.of_list (List.map (fun p -> float_of_int p.Obs.Export.iter) pts)
            in
            let ys =
              Array.of_list
                (List.map
                   (fun (p : Obs.Export.point) ->
                     let v =
                       match List.assoc_opt value_key p.Obs.Export.values with
                       | Some v -> v
                       | None -> Float.nan
                     in
                     Float.log10 (Float.max 1e-300 v))
                   pts)
            in
            let context =
              match span_id with
              | None -> "(no enclosing span)"
              | Some id -> (
                match span_by_id id with
                | None -> Printf.sprintf "span %d" id
                | Some s ->
                  let status =
                    match List.assoc_opt "status" s.Obs.Export.attrs with
                    | Some (Obs.Export.Str st) -> ", " ^ st
                    | _ -> ""
                  in
                  Printf.sprintf "%s (span %d%s)" s.Obs.Export.name id status)
            in
            Printf.printf "%s %s — %d iterations\n" series context (List.length pts);
            Dataio.Ascii_plot.output stdout
              ~title:(Printf.sprintf "log10(%s) vs iteration" value_key)
              [ { Dataio.Ascii_plot.label = value_key; glyph = 'o'; xs; ys } ];
            (* Flag pathologies: a stalled solve, and non-monotone phases
               where the residual rose between consecutive iterations. *)
            let rises = ref 0 in
            Array.iteri
              (fun i y -> if i > 0 && y > ys.(i - 1) +. 1e-12 then incr rises)
              ys;
            if !rises > 0 then
              Printf.printf "  non-monotone: %s rose on %d of %d steps\n" value_key !rises
                (Array.length ys - 1);
            (match span_id with
            | Some id -> (
              match span_by_id id with
              | Some s
                when (match List.assoc_opt "status" s.Obs.Export.attrs with
                     | Some (Obs.Export.Str "stalled") -> true
                     | _ -> false) ->
                Printf.printf "  STALL: solver hit its iteration limit before converging\n"
              | _ -> ())
            | None -> ());
            let n = Array.length ys in
            if n >= 6 && ys.(n - 1) > ys.(n - 6) -. 0.01 then
              Printf.printf
                "  plateau: less than 0.01 decades of progress over the last 5 iterations\n";
            print_newline ())
          !groups;
        0
      end
  in
  Cmd.v
    (Cmd.info "convergence"
       ~doc:"Plot per-solve convergence curves (KKT residual, RL relative change) from a trace.")
    Term.(const run $ file_arg $ series_arg)

(* ---------------- trace utilization ---------------- *)

let trace_utilization_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"TRACE.JSONL"
             ~doc:"Trace written by `batch --trace` (or any traced run at --jobs > 1).")
  in
  let run file =
    match read_trace_file file with
    | Error msg ->
      Printf.eprintf "error: %s: %s\n" file msg;
      1
    | Ok events -> (
      match Obs.Utilization.of_events events with
      | Some report ->
        Obs.Utilization.output stdout report;
        0
      | None ->
        Printf.printf
          "no chunk telemetry in %s (record with `batch --trace FILE`; chunks are only \
           emitted while a probe is installed)\n"
          file;
        0)
  in
  Cmd.v
    (Cmd.info "utilization"
       ~doc:"Per-domain busy fractions and chunk-wall imbalance from a trace's chunk samples.")
    Term.(const run $ file_arg)

(* ---------------- trace export ---------------- *)

let trace_export_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"TRACE.JSONL" ~doc:"Trace written by `--trace`.")
  in
  let format_arg =
    Arg.(value & opt (enum [ ("chrome", `Chrome) ]) `Chrome
         & info [ "format" ] ~docv:"FORMAT"
             ~doc:"Output format. $(b,chrome): Chrome trace-event JSON — open the result at \
                   https://ui.perfetto.dev or chrome://tracing.")
  in
  let run file format output =
    match read_trace_file file with
    | Error msg ->
      Printf.eprintf "error: %s: %s\n" file msg;
      1
    | Ok events -> (
      match format with
      | `Chrome -> (
        match output with
        | Some path ->
          let oc = open_out path in
          Obs.Chrome.output oc events;
          close_out oc;
          Printf.printf "wrote %d events as Chrome trace JSON to %s\n" (List.length events)
            path;
          0
        | None ->
          Obs.Chrome.output stdout events;
          0))
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Convert a JSONL trace to another format (currently Chrome trace-event JSON, \
             openable in Perfetto).")
    Term.(const run $ file_arg $ format_arg $ output_arg)

let trace_selfcheck_cmd =
  let run () =
    let failures = ref [] in
    let check name ok = if not ok then failures := name :: !failures in
    (* 1. Serialization round-trip: to_json -> of_json -> to_json must be a
       fixed point, including escapes and non-finite floats. *)
    let nasty = "quote\" backslash\\ newline\n tab\t ctrl\x01 utf8 \xc3\xa9" in
    let events =
      [
        Obs.Export.Span
          { Obs.Export.id = 1; parent = None; name = nasty; start_s = 0.0;
            stop_s = 0.125;
            attrs =
              [ ("f", Obs.Export.Float 0.1); ("i", Obs.Export.Int (-3));
                ("s", Obs.Export.Str nasty); ("b", Obs.Export.Bool false);
                ("nan", Obs.Export.Float Float.nan);
                ("inf", Obs.Export.Float Float.infinity) ] };
        Obs.Export.Span
          { Obs.Export.id = 2; parent = Some 1; name = "child"; start_s = 0.25;
            stop_s = 0.5; attrs = [] };
        Obs.Export.Metric
          { Obs.Export.metric_name = "m"; kind = "histogram";
            fields = [ ("count", 2.0); ("sum", 1e-300); ("max", Float.nan) ] };
        Obs.Export.Sample
          { Obs.Export.s_kind = "resource"; t_s = 1.5;
            values = [ ("heap_words", 123456.0); ("rss_bytes", Float.nan) ] };
        Obs.Export.Sample
          { Obs.Export.s_kind = "chunk"; t_s = 2.0;
            values =
              [ ("domain", 3.0); ("lo", 0.0); ("hi", 64.0); ("start", 1.75);
                ("stop", 2.0) ] };
      ]
    in
    List.iter
      (fun ev ->
        let line = Obs.Export.to_json ev in
        match Obs.Export.of_json line with
        | Ok ev' -> check ("round-trip " ^ line) (String.equal line (Obs.Export.to_json ev'))
        | Error msg -> check (Printf.sprintf "parse %s (%s)" line msg) false)
      events;
    check "reject garbage" (Result.is_error (Obs.Export.of_json "{\"ev\":\"span\""));
    check "reject unknown event kind"
      (Result.is_error (Obs.Export.of_json "{\"ev\":\"bogus\",\"t\":1.0}"));
    (* 1b. Sample semantics: resource readings are well-formed, chunk
       samples aggregate into a utilization report, and the ticker's
       skip-missed-ticks policy holds under a manual clock. *)
    check "resource read has gc fields"
      (List.for_all
         (fun k -> List.mem_assoc k (Obs.Resource.read ()))
         [ "minor_words"; "promoted_words"; "major_collections"; "heap_words" ]);
    let tk = Obs.Resource.ticker ~period:1.0 ~now:0.0 in
    check "ticker not due early" (not (Obs.Resource.due tk ~now:0.5));
    check "ticker due at period" (Obs.Resource.due tk ~now:1.0);
    check "ticker skips missed ticks"
      (Obs.Resource.due tk ~now:5.25 && not (Obs.Resource.due tk ~now:5.75));
    (match
       Obs.Utilization.of_events
         [
           Obs.Export.Sample
             { Obs.Export.s_kind = "chunk"; t_s = 1.0;
               values =
                 [ ("domain", 0.0); ("lo", 0.0); ("hi", 8.0); ("start", 0.0);
                   ("stop", 1.0) ] };
         ]
     with
    | Some r ->
      check "utilization busy fraction in (0,1]"
        (List.for_all
           (fun d ->
             d.Obs.Utilization.busy_fraction > 0.0 && d.Obs.Utilization.busy_fraction <= 1.0)
           r.Obs.Utilization.domains);
      check "utilization imbalance finite" (Float.is_finite r.Obs.Utilization.imbalance)
    | None -> check "utilization report from one chunk" false);
    (* 2. Nesting under a deterministic clock and a memory sink. *)
    let source, advance = Obs.Clock.manual () in
    let sink, recorded = Obs.Export.memory () in
    Obs.Span.reset ();
    Obs.Export.install sink;
    Fun.protect
      ~finally:(fun () ->
        Obs.Export.uninstall ();
        Obs.Span.reset ())
      (fun () ->
        Obs.Clock.with_source source (fun () ->
            Obs.Span.with_ "outer" (fun _ ->
                advance 1.0;
                Obs.Span.with_ "inner" (fun _ -> advance 0.5))));
    (match recorded () with
    | [ Obs.Export.Span inner; Obs.Export.Span outer ] ->
      check "inner closes first" (String.equal inner.Obs.Export.name "inner");
      check "inner parent is outer" (inner.Obs.Export.parent = Some outer.Obs.Export.id);
      check "outer is a root" (outer.Obs.Export.parent = None);
      check "inner duration"
        (Float.equal (inner.Obs.Export.stop_s -. inner.Obs.Export.start_s) 0.5);
      check "outer duration"
        (Float.equal (outer.Obs.Export.stop_s -. outer.Obs.Export.start_s) 1.5)
    | evs -> check (Printf.sprintf "expected 2 spans, got %d events" (List.length evs)) false);
    match List.rev !failures with
    | [] ->
      print_endline "trace selfcheck: ok";
      0
    | fs ->
      List.iter (fun f -> Printf.eprintf "trace selfcheck FAILED: %s\n" f) fs;
      1
  in
  Cmd.v
    (Cmd.info "selfcheck"
       ~doc:"Verify the trace schema: serialization round-trip (spans, metrics, samples), \
             span nesting, ticker policy, and utilization aggregation.")
    Term.(const run $ const ())

(* ---------------- trace diff ---------------- *)

let trace_diff_cmd =
  let file_a_arg =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"A.JSONL" ~doc:"Baseline trace.")
  in
  let file_b_arg =
    Arg.(required & pos 1 (some file) None
         & info [] ~docv:"B.JSONL" ~doc:"Candidate trace, compared against the baseline.")
  in
  let tolerance_arg =
    Arg.(value & opt float Obs.Trajectory.default_thresholds.Obs.Trajectory.tolerance
         & info [ "tolerance" ] ~docv:"FRAC"
             ~doc:"Relative per-span slowdown tolerated before a time regression fires \
                   (0.3 = 30%). Quality statistics are always compared exactly.")
  in
  let run file_a file_b tolerance =
    match read_trace_file file_a, read_trace_file file_b with
    | Error msg, _ ->
      Printf.eprintf "error: %s: %s\n" file_a msg;
      1
    | _, Error msg ->
      Printf.eprintf "error: %s: %s\n" file_b msg;
      1
    | Ok a, Ok b ->
      let thresholds =
        { Obs.Trajectory.default_thresholds with Obs.Trajectory.tolerance }
      in
      let d = Obs.Tracediff.diff ~thresholds a b in
      Obs.Tracediff.output stdout d;
      if Obs.Tracediff.has_regression d then 1 else 0
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:"Compare two traces of the same workload: per-span wall-time deltas gated with \
             the bench-compare tolerance (plus an absolute noise floor), and per-solve \
             quality statistics compared exactly. Exit 1 on a time regression.")
    Term.(const run $ file_a_arg $ file_b_arg $ tolerance_arg)

let trace_cmd =
  Cmd.group
    (Cmd.info "trace" ~doc:"Inspect and validate observability traces.")
    [
      trace_summarize_cmd; trace_convergence_cmd; trace_utilization_cmd; trace_export_cmd;
      trace_selfcheck_cmd; trace_diff_cmd;
    ]

(* ---------------- diagnose ---------------- *)

let diagnose_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"TRACE.JSONL" ~doc:"Trace written by `deconvolve --trace` or \
                                             `batch --trace`.")
  in
  let json_arg =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Emit the report as JSON (exact float round-trip) instead \
                                 of text.")
  in
  let no_plot_arg =
    Arg.(value & flag
         & info [ "no-plot" ] ~doc:"Suppress the ASCII λ-profile plots in the text report.")
  in
  let kappa_limit_arg =
    Arg.(value & opt float Deconv.Quality.default_thresholds.Deconv.Quality.kappa_limit
         & info [ "kappa-limit" ] ~docv:"K"
             ~doc:"Flag solves whose condition number κ exceeds $(docv).")
  in
  let run file json no_plot kappa_limit =
    match read_trace_file file with
    | Error msg ->
      Printf.eprintf "error: %s: %s\n" file msg;
      1
    | Ok events ->
      let thresholds =
        { Deconv.Quality.default_thresholds with Deconv.Quality.kappa_limit }
      in
      let cards = Deconv.Quality.cards ~thresholds events in
      if cards = [] then begin
        Printf.eprintf
          "error: %s carries no per-solve diag records — re-run with --trace on a build \
           with diagnostics enabled\n"
          file;
        1
      end
      else if json then begin
        print_string (Deconv.Quality.report_json cards);
        print_newline ();
        0
      end
      else begin
        Deconv.Quality.output_report ~thresholds ~plot:(not no_plot) stdout cards;
        0
      end
  in
  Cmd.v
    (Cmd.info "diagnose"
       ~doc:"Per-solve quality report card from a trace: condition number κ, selected λ and \
             effective degrees of freedom, the λ-candidate profile (plotted), weighted-residual \
             whiteness and normality verdicts, active-constraint counts, and the robust-cascade \
             path, with flags for unhealthy solves.")
    Term.(const run $ file_arg $ json_arg $ no_plot_arg $ kappa_limit_arg)

(* ---------------- bench ---------------- *)

let bench_compare_cmd =
  let file_arg =
    Arg.(value & opt string "BENCH_deconv.json"
         & info [ "file" ] ~docv:"FILE" ~doc:"Benchmark trajectory file.")
  in
  let baseline_arg =
    Arg.(value & opt (some string) None
         & info [ "baseline" ] ~docv:"REV"
             ~doc:"Compare the newest record of each bench against its newest earlier record \
                   at git revision $(docv) (default: the immediately preceding record).")
  in
  let tolerance_arg =
    Arg.(value & opt float Obs.Trajectory.default_thresholds.Obs.Trajectory.tolerance
         & info [ "tolerance" ] ~docv:"FRAC"
             ~doc:"Relative slowdown tolerated before a regression fires (0.3 = 30%).")
  in
  let min_r2_arg =
    Arg.(value & opt float Obs.Trajectory.default_thresholds.Obs.Trajectory.min_r_square
         & info [ "min-r2" ] ~docv:"R2"
             ~doc:"Skip gating records whose OLS fit has r_square below $(docv); records \
                   without a fit (NaN r_square, e.g. macro means) are always gated.")
  in
  let run file baseline tolerance min_r2 =
    match Obs.Trajectory.load ~path:file with
    | Error msg ->
      Printf.eprintf "error: %s: %s\n" file msg;
      1
    | Ok t when Obs.Trajectory.records t = [] ->
      Printf.eprintf
        "error: %s has no records; run `bench macro` or `bench micro --json` first\n" file;
      1
    | Ok t ->
      let thresholds = { Obs.Trajectory.tolerance; min_r_square = min_r2 } in
      let comparisons = Obs.Trajectory.compare_latest ?baseline_rev:baseline ~thresholds t in
      Obs.Trajectory.output_comparisons stdout comparisons;
      let gated =
        List.filter
          (fun c ->
            match c.Obs.Trajectory.verdict with Obs.Trajectory.Skipped _ -> false | _ -> true)
          comparisons
      in
      (* A macro regression can only fire when macro records exist on both
         sides; say so out loud instead of passing vacuously. *)
      let macro_gated =
        List.exists
          (fun c ->
            c.Obs.Trajectory.latest.Obs.Trajectory.kind = Obs.Trajectory.Macro
            && match c.Obs.Trajectory.verdict with Obs.Trajectory.Skipped _ -> false | _ -> true)
          gated
      in
      if not macro_gated then
        Printf.printf
          "warning: no macro records gated%s — the end-to-end timings are not covered by \
           this comparison; run `bench macro` (and `bench macro_mt`) at both revisions\n"
          (match baseline with
          | Some rev -> Printf.sprintf " against baseline %s" rev
          | None -> "");
      if Obs.Trajectory.has_regression comparisons then begin
        Printf.printf "regression detected (tolerance %.0f%%)\n" (100.0 *. tolerance);
        1
      end
      else begin
        Printf.printf "no regressions across %d gated benches (tolerance %.0f%%)\n"
          (List.length gated) (100.0 *. tolerance);
        0
      end
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Diff the newest benchmark records against a baseline; exit 1 on a regression.")
    Term.(const run $ file_arg $ baseline_arg $ tolerance_arg $ min_r2_arg)

let bench_cmd =
  Cmd.group
    (Cmd.info "bench" ~doc:"Inspect the benchmark trajectory (BENCH_deconv.json).")
    [ bench_compare_cmd ]

(* ---------------- batch ---------------- *)

let genes_arg =
  Arg.(value & opt int 200 & info [ "genes" ] ~docv:"N" ~doc:"Number of genes in the panel.")

let faults_arg =
  Arg.(value & opt int 0
       & info [ "faults" ] ~docv:"K"
           ~doc:"Inject NaN corruption into $(docv) random gene rows (fault-isolation demo).")

let timeout_arg =
  Arg.(value & opt float 0.0
       & info [ "solve-timeout" ] ~docv:"SEC"
           ~doc:"Per-gene wall-clock budget in seconds (0 = unlimited). A gene that exceeds \
                 it fails with budget_exhausted instead of stalling a worker domain.")

let max_iters_arg =
  Arg.(value & opt int 0
       & info [ "max-iters" ] ~docv:"N"
           ~doc:"Per-gene iteration budget across the whole solve cascade (0 = unlimited).")

let checkpoint_arg =
  Arg.(value & opt (some string) None
       & info [ "checkpoint" ] ~docv:"FILE"
           ~doc:"Journal per-gene outcomes to $(docv) (atomic JSONL, fsync'd per block).")

let resume_arg =
  Arg.(value & flag
       & info [ "resume" ]
           ~doc:"Replay completed genes from the $(b,--checkpoint) journal and solve only \
                 the rest; results are bit-for-bit identical to an uninterrupted run.")

let block_arg =
  Arg.(value & opt int 64
       & info [ "block" ] ~docv:"N" ~doc:"Genes solved between checkpoint flushes.")

let no_keep_going_arg =
  Arg.(value & flag
       & info [ "no-keep-going" ]
           ~doc:"Fail hard (exit 1) on the first gene error instead of the default \
                 keep-going behavior (contain failures, finish the batch, exit 3 if any \
                 gene failed).")

let synthetic_panel ~rng ~kernel ~genes =
  Mat.of_rows
    (Array.init genes (fun _ ->
         let center = Rng.uniform rng ~lo:0.15 ~hi:0.85 in
         let width = Rng.uniform rng ~lo:0.08 ~hi:0.15 in
         let height = Rng.uniform rng ~lo:1.0 ~hi:4.0 in
         Deconv.Forward.apply_fn kernel
           (Biomodels.Gene_profile.gaussian_pulse ~center ~width ~height ())))

let print_outcome outcome =
  let open Deconv.Batch in
  Printf.printf "batch: %d genes, %d ok, %d failed, %d replayed from checkpoint\n"
    (Outcome.total outcome) (Outcome.ok_count outcome) (Outcome.failed_count outcome)
    outcome.Outcome.replayed;
  List.iter
    (fun (cls, n) -> Printf.printf "  failures.%s = %d\n" cls n)
    (Outcome.class_counts outcome);
  let failures = Outcome.failures outcome in
  List.iteri
    (fun i (g, e) ->
      if i < 10 then Printf.printf "  gene %d: %s\n" g (Robust.Error.to_string e))
    failures;
  if List.length failures > 10 then
    Printf.printf "  ... and %d more\n" (List.length failures - 10);
  Deconv.Quality.output_quantiles stdout outcome.Outcome.quality

let progress_flag_arg =
  Arg.(value & flag
       & info [ "progress" ]
           ~doc:"Render a live status line on stderr while the batch runs: genes done, \
                 items/sec over a sliding window, ETA, and per-class failure counts.")

let sample_period_arg =
  Arg.(value & opt float 1.0
       & info [ "sample-period" ] ~docv:"SEC"
           ~doc:"Resource-sampler heartbeat period for $(b,--trace) (GC counters + RSS as \
                 {\"ev\":\"sample\"} records).")

let run_batch jobs seed genes faults cells phi_bins knots mu_sst cycle linear timeout
    max_iters checkpoint resume block no_keep_going trace progress_flag sample_period metrics =
  apply_jobs jobs;
  if metrics || Option.is_some trace then Obs.Metrics.enable ();
  if resume && checkpoint = None then begin
    Printf.eprintf "error: --resume requires --checkpoint FILE\n";
    exit 2
  end;
  (* Tracing turns on the whole live layer: JSONL sink, chunk probe on
     the pool, and the resource-sampler domain. Teardown order matters —
     sampler first (it emits), then probe, then the sink. *)
  let trace_channel =
    match trace with
    | None -> None
    | Some path ->
      let oc = open_out path in
      Obs.Export.install (Obs.Export.jsonl oc);
      Parallel.Probe.install chunk_probe;
      Some (path, oc, Obs.Resource.start ~period_s:sample_period ())
  in
  let progress =
    if not progress_flag then None
    else begin
      let p = Obs.Progress.create ~total:genes () in
      Obs.Progress.observe p (fun snap ->
          Printf.eprintf "\r%-78s%!" (Obs.Progress.render snap));
      Some p
    end
  in
  let params = params_of mu_sst cycle linear in
  let rng = Rng.create seed in
  let times = Dataio.Datasets.lv_measurement_times in
  let kernel =
    Cellpop.Kernel.estimate ~smooth_window:5 params ~rng:(Rng.split rng) ~n_cells:cells
      ~times ~n_phi:phi_bins
  in
  let basis = Spline.Natural.with_uniform_knots ~lo:0.0 ~hi:1.0 ~num_knots:knots in
  let batch = Deconv.Batch.prepare ~kernel ~basis ~params () in
  let measurements = synthetic_panel ~rng:(Rng.split rng) ~kernel ~genes in
  let measurements =
    if faults <= 0 then measurements
    else begin
      let frng = Rng.split rng in
      let rows = Robust.Fault.choose_rows frng ~k:faults ~rows:genes in
      Printf.printf "injecting NaN faults into genes: %s\n"
        (String.concat "," (Array.to_list (Array.map string_of_int rows)));
      Robust.Fault.apply (Robust.Fault.corrupt_rows ~rows (Robust.Fault.nan_at ())) frng
        measurements
    end
  in
  let journal =
    match checkpoint with
    | None -> None
    | Some path when resume -> (
      match Deconv.Checkpoint.resume ~path with
      | Ok j ->
        Printf.printf "resuming from %s (%d journaled genes)\n" path
          (List.length (Deconv.Checkpoint.entries j));
        Some j
      | Error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 1)
    | Some path -> Some (Deconv.Checkpoint.create ~path)
  in
  let outcome =
    Obs.Span.with_ "batch" (fun sp ->
        Obs.Span.set_int sp "genes" genes;
        Obs.Span.set_int sp "jobs" (Parallel.jobs ());
        Deconv.Batch.solve_all_result batch ~lambda:`Gcv
          ?max_seconds:(if timeout > 0.0 then Some timeout else None)
          ?max_iterations:(if max_iters > 0 then Some max_iters else None)
          ?journal ~block ?progress ~measurements ())
  in
  (match progress with
  | Some p ->
    Obs.Progress.finish p;
    prerr_newline ()
  | None -> ());
  (match trace_channel with
  | Some (path, oc, sampler) ->
    Obs.Resource.stop sampler;
    Parallel.Probe.uninstall ();
    List.iter Obs.Export.emit (Obs.Metrics.events ());
    Obs.Export.uninstall ();
    close_out oc;
    Printf.printf "wrote observability trace to %s\n" path
  | None -> ());
  print_outcome outcome;
  if metrics then Obs.Metrics.output stdout;
  if Deconv.Batch.Outcome.fully_ok outcome then 0
  else if no_keep_going then 1
  else 3

let batch_cmd =
  let term =
    Term.(
      const run_batch $ jobs_arg $ seed_arg $ genes_arg $ faults_arg $ cells_arg $ phi_bins_arg
      $ knots_arg $ mu_sst_arg $ cycle_arg $ linear_volume_arg $ timeout_arg $ max_iters_arg
      $ checkpoint_arg $ resume_arg $ block_arg $ no_keep_going_arg $ trace_arg
      $ progress_flag_arg $ sample_period_arg $ metrics_flag_arg)
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:"Survivable genome-scale batch deconvolution of a synthetic gene panel: per-gene \
             fault isolation, solve budgets, crash-safe checkpoint/resume. Exit codes: 0 all \
             genes ok, 3 batch completed with contained per-gene failures.")
    term

(* ---------------- chaos ---------------- *)

let chaos_cmd =
  let jobs_list_arg =
    Arg.(value & opt string "1,2,4"
         & info [ "jobs-list" ] ~docv:"N1,N2,..."
             ~doc:"Jobs settings the determinism invariant is checked at.")
  in
  let crash_after_arg =
    Arg.(value & opt int 0
         & info [ "crash-after" ] ~docv:"GENES"
             ~doc:"Inject the crash once this many genes completed (0 = halfway).")
  in
  let run genes faults seed jobs_list block crash_after checkpoint =
    let jobs =
      List.map
        (fun s -> int_of_string (String.trim s))
        (String.split_on_char ',' jobs_list)
    in
    let config =
      {
        Deconv.Chaos.default_config with
        Deconv.Chaos.genes;
        faults;
        seed;
        jobs;
        block;
        crash_after;
      }
    in
    let journal_path =
      match checkpoint with
      | Some p -> p
      | None -> Filename.temp_file "deconv-chaos" ".jsonl"
    in
    let report = Deconv.Chaos.run ~config ~journal_path () in
    Printf.printf "chaos: %d genes, %d injected faults (rows %s), jobs {%s}\n" genes faults
      (String.concat "," (Array.to_list (Array.map string_of_int report.Deconv.Chaos.faulty_rows)))
      (String.concat "," (List.map string_of_int jobs));
    List.iter
      (fun (cls, n) -> Printf.printf "  failures.%s = %d\n" cls n)
      report.Deconv.Chaos.class_counts;
    Printf.printf "  journaled errors: %d; resume replayed %d genes (journal: %s)\n"
      report.Deconv.Chaos.journaled_errors report.Deconv.Chaos.replayed journal_path;
    if Deconv.Chaos.passed report then begin
      Printf.printf "all isolation invariants held\n";
      0
    end
    else begin
      List.iter (fun v -> Printf.printf "VIOLATION: %s\n" v) report.Deconv.Chaos.violations;
      Printf.printf "%d invariant violation(s)\n"
        (List.length report.Deconv.Chaos.violations);
      1
    end
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Drive a batch under injected per-gene faults and a mid-batch crash, and assert \
             the isolation invariants: exactly the faulty genes fail, clean genes are \
             bit-for-bit identical to a fault-free run at every jobs setting, and \
             kill/resume reproduces the uninterrupted results exactly.")
    Term.(
      const run $ genes_arg $ Arg.(value & opt int 10 & info [ "faults" ] ~docv:"K"
                                     ~doc:"Number of injected faulty gene rows.")
      $ seed_arg $ jobs_list_arg $ block_arg $ crash_after_arg $ checkpoint_arg)

(* ---------------- main ---------------- *)

let () =
  let doc = "in-silico synchronization of cellular populations by expression deconvolution" in
  let info = Cmd.info "deconv-cli" ~version:"1.0.0" ~doc in
  let code =
    Cmd.eval'
      (Cmd.group info
         [
           simulate_cmd; deconvolve_cmd; batch_cmd; chaos_cmd; kernel_cmd; celltypes_cmd;
           identifiability_cmd; schedule_cmd; calibrate_cmd; trace_cmd; bench_cmd;
           diagnose_cmd;
         ])
  in
  (* Documented exit codes: 0 ok, 1 gate/lint/run failure, 2 usage error,
     3 batch completed with contained per-gene failures. Cmdliner reports
     CLI usage errors as 124; fold them onto the documented code. *)
  exit (if code = Cmd.Exit.cli_error then 2 else code)
