(* deconv-lint: numerical-safety static analysis for the deconvolution
   codebase. Parses every .ml/.mli under the given paths with
   compiler-libs and enforces the rule registry of Analysis.Rules.

   Exit codes: 0 clean, 1 findings, 2 usage/IO/parse errors. *)

let usage =
  "deconv-lint [--json] [--disable RULE]... [--list-rules] [PATH]...\n\
   Lints .ml/.mli files (recursively for directories). With no PATH,\n\
   lints lib bin bench test. Suppress a finding in source with\n\
   '(* lint: allow R_ — reason *)' on, or just above, the offending line.\n\
   Options:"

let () =
  let json = ref false in
  let list_rules = ref false in
  let disabled = ref [] in
  let paths = ref [] in
  let spec =
    [
      ("--json", Arg.Set json, " emit findings as a JSON array on stdout");
      ( "--disable",
        Arg.String (fun r -> disabled := r :: !disabled),
        "RULE disable a rule id for this run (repeatable)" );
      ("--list-rules", Arg.Set list_rules, " print the rule registry and exit");
    ]
  in
  Arg.parse (Arg.align spec) (fun p -> paths := p :: !paths) usage;
  if !list_rules then begin
    List.iter
      (fun (r : Analysis.Rules.t) ->
        let scope =
          match r.Analysis.Rules.scope with
          | Analysis.Rules.Everywhere -> "everywhere"
          | Analysis.Rules.Lib_only -> "lib/ only"
          | Analysis.Rules.Except_obs -> "everywhere except lib/obs/"
          | Analysis.Rules.Except_concurrency -> "everywhere except lib/parallel/ and lib/obs/"
          | Analysis.Rules.Except_atomic -> "lib/ only, except lib/dataio/atomic_file.ml"
        in
        Printf.printf "%s (%s; %s)\n    %s\n" r.Analysis.Rules.id r.Analysis.Rules.title
          scope r.Analysis.Rules.description)
      Analysis.Rules.all;
    exit 0
  end;
  let unknown =
    List.filter (fun r -> Option.is_none (Analysis.Rules.normalize_id r)) !disabled
  in
  if unknown <> [] then begin
    Printf.eprintf "deconv-lint: unknown rule id(s) in --disable: %s\n"
      (String.concat ", " unknown);
    exit 2
  end;
  let paths =
    match List.rev !paths with [] -> [ "lib"; "bin"; "bench"; "test" ] | ps -> ps
  in
  let result = Analysis.Lint.run ~disabled:!disabled paths in
  List.iter
    (fun (path, msg) ->
      if String.equal path "" then Printf.eprintf "deconv-lint: %s\n" msg
      else Printf.eprintf "deconv-lint: %s: %s\n" path msg)
    result.Analysis.Lint.errors;
  if result.Analysis.Lint.errors <> [] then exit 2;
  let findings = result.Analysis.Lint.findings in
  if !json then print_endline (Analysis.Finding.list_to_json findings)
  else begin
    List.iter (fun f -> print_endline (Analysis.Finding.to_text f)) findings;
    Printf.eprintf "deconv-lint: %d finding(s) in %d file(s)\n" (List.length findings)
      result.Analysis.Lint.files
  end;
  exit (if findings = [] then 0 else 1)
