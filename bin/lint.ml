(* deconv-lint: numerical-safety static analysis for the deconvolution
   codebase. Parses every .ml/.mli under the given paths with
   compiler-libs and enforces the rule registry of Analysis.Rules.

   Two passes:
     deconv-lint [PATH]...        per-file rules R0-R9
     deconv-lint check [PATH]...  interprocedural rules R10-R12
                                  (call graph + effect fixpoint)

   Exit codes: 0 clean, 1 findings, 2 usage/IO/parse errors. *)

let usage =
  "deconv-lint [check] [OPTIONS] [PATH]...\n\
   Lints .ml/.mli files (recursively for directories). The default pass\n\
   applies the per-file rules R0-R9; 'deconv-lint check' builds the\n\
   whole-program call graph and applies the interprocedural rules\n\
   R10-R12 (default path: lib). With no PATH, the per-file pass lints\n\
   lib bin bench test examples. Suppress a finding in source with\n\
   '(* lint: allow R_ — reason *)' on, or just above, the offending line.\n\
   Options:"

let scope_text = function
  | Analysis.Rules.Everywhere -> "everywhere"
  | Analysis.Rules.Lib_only -> "lib/ only"
  | Analysis.Rules.Except_obs -> "everywhere except lib/obs/"
  | Analysis.Rules.Except_concurrency ->
    "everywhere except lib/parallel/ and lib/obs/"
  | Analysis.Rules.Except_atomic -> "lib/ only, except lib/dataio/atomic_file.ml"
  | Analysis.Rules.Except_quality -> "lib/ only, except lib/numerics/ and lib/core/"
  | Analysis.Rules.Check_only -> "whole-program, via 'deconv-lint check'"

let print_rules () =
  List.iter
    (fun (r : Analysis.Rules.t) ->
      Printf.printf "%s (%s; %s)\n    %s\n" r.Analysis.Rules.id r.Analysis.Rules.title
        (scope_text r.Analysis.Rules.scope)
        r.Analysis.Rules.description)
    Analysis.Rules.all

let rules_meta =
  List.map
    (fun (r : Analysis.Rules.t) ->
      (r.Analysis.Rules.id, r.Analysis.Rules.title, r.Analysis.Rules.description))
    Analysis.Rules.all

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | contents -> Ok contents
  | exception Sys_error msg -> Error msg

let write_file path contents =
  match Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc contents) with
  | () -> Ok ()
  | exception Sys_error msg -> Error msg

let () =
  let format = ref "text" in
  let list_rules = ref false in
  let disabled = ref [] in
  let paths = ref [] in
  let baseline_file = ref "" in
  let write_baseline = ref false in
  let spec =
    [
      ( "--format",
        Arg.Symbol ([ "text"; "json"; "sarif" ], fun f -> format := f),
        " output format (default text)" );
      ("--json", Arg.Unit (fun () -> format := "json"), " shorthand for --format json");
      ( "--disable",
        Arg.String (fun r -> disabled := r :: !disabled),
        "RULE disable a rule id for this run (repeatable)" );
      ( "--baseline",
        Arg.Set_string baseline_file,
        "FILE only findings absent from this snapshot fail the run" );
      ( "--write-baseline",
        Arg.Set write_baseline,
        " rewrite the --baseline file from this run's findings and exit 0" );
      ("--list-rules", Arg.Set list_rules, " print the rule registry and exit");
    ]
  in
  Arg.parse (Arg.align spec) (fun p -> paths := p :: !paths) usage;
  if !list_rules then begin
    print_rules ();
    exit 0
  end;
  if !write_baseline && String.equal !baseline_file "" then begin
    prerr_endline "deconv-lint: --write-baseline requires --baseline FILE";
    exit 2
  end;
  let unknown =
    List.filter (fun r -> Option.is_none (Analysis.Rules.normalize_id r)) !disabled
  in
  if unknown <> [] then begin
    Printf.eprintf "deconv-lint: unknown rule id(s) in --disable: %s\n"
      (String.concat ", " unknown);
    exit 2
  end;
  let check_mode, paths =
    match List.rev !paths with
    | "check" :: rest ->
      (true, match rest with [] -> [ "lib" ] | ps -> ps)
    | [] -> (false, [ "lib"; "bin"; "bench"; "test"; "examples" ])
    | ps -> (false, ps)
  in
  let findings, errors, summary_of =
    if check_mode then begin
      let r = Analysis.Policy.check_paths ~disabled:!disabled paths in
      let summary_of n =
        Printf.sprintf "%d finding(s); %d def(s) in %d file(s), fixpoint in %d sweep(s)"
          n r.Analysis.Policy.defs r.Analysis.Policy.files r.Analysis.Policy.iterations
      in
      (r.Analysis.Policy.findings, r.Analysis.Policy.errors, summary_of)
    end
    else begin
      let r = Analysis.Lint.run ~disabled:!disabled paths in
      let summary_of n =
        Printf.sprintf "%d finding(s) in %d file(s)" n r.Analysis.Lint.files
      in
      (r.Analysis.Lint.findings, r.Analysis.Lint.errors, summary_of)
    end
  in
  List.iter
    (fun (path, msg) ->
      if String.equal path "" then Printf.eprintf "deconv-lint: %s\n" msg
      else Printf.eprintf "deconv-lint: %s: %s\n" path msg)
    errors;
  if errors <> [] then exit 2;
  (* Baseline handling: --write-baseline snapshots this run; --baseline
     alone fails only on findings absent from the snapshot, and nags
     about stale entries so the file ratchets down over time. *)
  if !write_baseline then begin
    match write_file !baseline_file (Analysis.Baseline.to_string findings) with
    | Ok () ->
      Printf.eprintf "deconv-lint: wrote %d baseline entr%s to %s\n"
        (List.length findings)
        (if List.length findings = 1 then "y" else "ies")
        !baseline_file;
      exit 0
    | Error msg ->
      Printf.eprintf "deconv-lint: %s: %s\n" !baseline_file msg;
      exit 2
  end;
  let findings, stale =
    if String.equal !baseline_file "" then (findings, [])
    else
      match read_file !baseline_file with
      | Error msg ->
        Printf.eprintf "deconv-lint: %s: %s\n" !baseline_file msg;
        exit 2
      | Ok contents ->
        let baseline = Analysis.Baseline.of_string contents in
        let cmp = Analysis.Baseline.compare_against ~baseline findings in
        (cmp.Analysis.Baseline.fresh, cmp.Analysis.Baseline.stale)
  in
  List.iter
    (fun (e : Analysis.Baseline.entry) ->
      Printf.eprintf
        "deconv-lint: stale baseline entry (fixed? rerun --write-baseline): [%s] %s: %s\n"
        e.Analysis.Baseline.rule e.Analysis.Baseline.file e.Analysis.Baseline.message)
    stale;
  (match !format with
  | "json" -> print_endline (Analysis.Finding.list_to_json findings)
  | "sarif" ->
    print_endline
      (Analysis.Finding.list_to_sarif ~tool:"deconv-lint" ~rules:rules_meta findings)
  | _ ->
    List.iter (fun f -> print_endline (Analysis.Finding.to_text f)) findings;
    Printf.eprintf "deconv-lint: %s\n" (summary_of (List.length findings)));
  exit (if findings = [] then 0 else 1)
