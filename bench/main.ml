(* Benchmark & reproduction harness.

   Running `dune exec bench/main.exe` regenerates, as printed series, every
   figure of the paper's evaluation (the paper has no numbered tables):

     fig1_phase_model     - the cell-cycle phase model of Fig. 1 / section 2.1
     fig2_lv_noiseless    - Fig. 2: Lotka-Volterra, noiseless
     fig3_lv_noisy        - Fig. 3: Lotka-Volterra, 10% Gaussian noise
     fig4_cell_types      - Fig. 4: cell-type distribution vs Judd et al.
     fig5_ftsz            - Fig. 5: ftsZ population vs deconvolved

   plus the ablations and extensions indexed in DESIGN.md
   (abl_volume_model, abl_constraints, ext_noise_sweep,
   ext_lambda_selection, ext_param_estimation) and Bechamel
   micro-benchmarks of the computational kernels.

   Pass a subset of section names as argv to run only those sections, e.g.
   `dune exec bench/main.exe -- fig2_lv_noiseless micro`. *)

open Numerics

let section name = Printf.printf "\n######## %s ########\n%!" name

(* Standard experiment sizes: large enough for smooth kernels, small enough
   that the whole harness runs in a couple of minutes. *)
let n_cells = 4000
let n_phi = 201

let lv_times = Dataio.Datasets.lv_measurement_times

let base_config ~times =
  { (Deconv.Pipeline.default_config ~times) with
    Deconv.Pipeline.n_cells_kernel = n_cells;
    n_cells_data = n_cells;
    n_phi;
  }

(* Subsample a (phases, values) curve for table printing. *)
let curve_rows ~stride xs ys =
  let idx = List.filter (fun i -> i mod stride = 0) (List.init (Array.length xs) Fun.id) in
  ( Array.of_list (List.map (fun i -> xs.(i)) idx),
    Array.of_list (List.map (fun i -> ys.(i)) idx) )

(* ------------------------------------------------------------------ *)
(* E1 / Fig. 1: the phase model.                                       *)
(* ------------------------------------------------------------------ *)

let fig1_phase_model () =
  section "fig1_phase_model (cell-cycle phase model, paper fig 1 / sec 2.1)";
  let params = Cellpop.Params.paper_2011 in
  let rng = Rng.create 2011 in
  let n = 20_000 in
  let phi_ssts = Array.init n (fun _ -> Cellpop.Cell.draw_phi_sst params rng) in
  let cycles = Array.init n (fun _ -> Cellpop.Cell.draw_cycle_minutes params rng) in
  let t = Dataio.Table.create ~title:"sampled phase-model parameters (20k cells)"
      ~headers:[ "paper_mean"; "sampled_mean"; "paper_cv"; "sampled_cv" ]
  in
  Dataio.Table.add_row t [| 0.15; Stats.mean phi_ssts; 0.13; Stats.cv phi_ssts |];
  Dataio.Table.add_row t [| 150.0; Stats.mean cycles; 0.10; Stats.cv cycles |];
  Dataio.Table.output stdout t;
  (* The phase axis of Fig. 1: the expected fraction of the cycle spent in
     the SW stage is E[phi_sst] = 0.15. *)
  let sw_fraction = Stats.mean phi_ssts in
  Printf.printf "mean SW-stage fraction of cycle: %.4f (paper: 0.15, updated from 0.25)\n"
    sw_fraction;
  let density_mass =
    Integrate.simpson (Cellpop.Params.sst_density params) ~a:0.0 ~b:0.5 ~n:2000
  in
  Printf.printf "transition-phase density mass on [0,0.5]: %.6f\n" density_mass

(* ------------------------------------------------------------------ *)
(* E2/E3 / Figs. 2-3: Lotka-Volterra deconvolution.                    *)
(* ------------------------------------------------------------------ *)

let lv_profiles =
  lazy
    (let p = Biomodels.Lotka_volterra.default_params in
     let x0 = Biomodels.Lotka_volterra.default_x0 in
     let phases, f1, f2 = Biomodels.Lotka_volterra.phase_profiles p ~x0 ~n_phi:400 in
     let profile values phi = Interp.linear_clamped ~x:phases ~y:values phi in
     (profile f1, profile f2))

let run_lv ~noise ~seed species_name profile =
  let config = { (base_config ~times:lv_times) with Deconv.Pipeline.noise; seed } in
  let run = Deconv.Pipeline.run config ~profile in
  (* Population series at the measurement times. *)
  let t1 =
    Dataio.Table.create
      ~title:(Printf.sprintf "%s: population measurements G(t)" species_name)
      ~headers:[ "minutes"; "population" ]
  in
  Dataio.Table.add_rows t1 [ run.Deconv.Pipeline.config.Deconv.Pipeline.times; run.Deconv.Pipeline.noisy ];
  Dataio.Table.output stdout t1;
  (* Single-cell truth vs deconvolved over one cycle (minutes = phi * 150). *)
  let minutes, deconvolved = Deconv.Pipeline.deconvolved_vs_minutes run in
  let minutes_s, deconvolved_s = curve_rows ~stride:10 minutes deconvolved in
  let _, truth_s = curve_rows ~stride:10 minutes run.Deconv.Pipeline.truth in
  let t2 =
    Dataio.Table.create
      ~title:(Printf.sprintf "%s: single-cell truth vs deconvolved" species_name)
      ~headers:[ "minutes"; "single_cell"; "deconvolved" ]
  in
  Dataio.Table.add_rows t2 [ minutes_s; truth_s; deconvolved_s ];
  Dataio.Table.output stdout t2;
  Printf.printf "%s recovery: %s (lambda=%.3g)\n" species_name
    (Deconv.Metrics.to_string run.Deconv.Pipeline.recovery)
    run.Deconv.Pipeline.lambda;
  run

let fig2_lv_noiseless () =
  section "fig2_lv_noiseless (LV oscillator, noiseless, paper fig 2)";
  let f1, f2 = Lazy.force lv_profiles in
  let r1 = run_lv ~noise:Deconv.Noise.No_noise ~seed:2 "x1" f1 in
  let r2 = run_lv ~noise:Deconv.Noise.No_noise ~seed:2 "x2" f2 in
  (* Headline shape check: deconvolution recovers what the population hides. *)
  let damping run =
    let pop = run.Deconv.Pipeline.noisy and truth = run.Deconv.Pipeline.truth in
    (Vec.max pop -. Vec.min pop) /. (Vec.max truth -. Vec.min truth)
  in
  Printf.printf
    "population amplitude / single-cell amplitude: x1 %.2f, x2 %.2f (asynchrony damps)\n"
    (damping r1) (damping r2);
  Printf.printf "deconvolved corr: x1 %.4f, x2 %.4f (paper: major features recovered)\n"
    r1.Deconv.Pipeline.recovery.Deconv.Metrics.correlation
    r2.Deconv.Pipeline.recovery.Deconv.Metrics.correlation

let fig3_lv_noisy () =
  section "fig3_lv_noisy (LV oscillator, 10% gaussian noise, paper fig 3)";
  let f1, f2 = Lazy.force lv_profiles in
  let r1 = run_lv ~noise:(Deconv.Noise.Gaussian_fraction 0.10) ~seed:3 "x1" f1 in
  let r2 = run_lv ~noise:(Deconv.Noise.Gaussian_fraction 0.10) ~seed:3 "x2" f2 in
  Printf.printf "deconvolved corr under 10%% noise: x1 %.4f, x2 %.4f\n"
    r1.Deconv.Pipeline.recovery.Deconv.Metrics.correlation
    r2.Deconv.Pipeline.recovery.Deconv.Metrics.correlation

(* ------------------------------------------------------------------ *)
(* E4 / Fig. 4: cell-type distribution vs Judd et al.                  *)
(* ------------------------------------------------------------------ *)

let fig4_cell_types () =
  section "fig4_cell_types (cell-type distribution, paper fig 4)";
  (* The population asynchrony is condition-dependent (paper sec 1); the
     Judd et al. batch culture grew in minimal medium with a cell cycle of
     ~180 minutes, slower than the 150-minute reference cycle used for the
     expression experiments. *)
  let params =
    { Cellpop.Params.paper_2011 with
      Cellpop.Params.mean_cycle_minutes = 180.0;
      cv_cycle = 0.18;
    }
  in
  let rng = Rng.create 404 in
  let times = Dataio.Datasets.judd_times in
  let snapshots = Cellpop.Population.simulate params ~rng ~n0:20_000 ~times in
  let print_for label boundaries =
    let f = Cellpop.Celltype.fractions_over_time boundaries snapshots in
    let t =
      Dataio.Table.create
        ~title:(Printf.sprintf "simulated cell-type fractions (%s boundaries)" label)
        ~headers:[ "minutes"; "SW"; "STE"; "STEPD"; "STLPD" ]
    in
    Dataio.Table.add_rows t
      [ times; Mat.col f 0; Mat.col f 1; Mat.col f 2; Mat.col f 3 ];
    Dataio.Table.output stdout t;
    f
  in
  ignore (print_for "low" Cellpop.Celltype.low_boundaries);
  let mid = print_for "mid" Cellpop.Celltype.mid_boundaries in
  ignore (print_for "high" Cellpop.Celltype.high_boundaries);
  let t =
    Dataio.Table.create ~title:"experimental fractions (Judd et al., digitized)"
      ~headers:[ "minutes"; "SW"; "STE"; "STEPD"; "STLPD" ]
  in
  Dataio.Table.add_rows t
    [
      times; Dataio.Datasets.judd_sw; Dataio.Datasets.judd_ste; Dataio.Datasets.judd_stepd;
      Dataio.Datasets.judd_stlpd;
    ];
  Dataio.Table.output stdout t;
  (* Shape agreement: max absolute deviation per cell type (mid boundaries). *)
  let dev j data =
    let sim = Mat.col mid j in
    Stats.max_abs_error sim data
  in
  Printf.printf
    "max |simulated - experimental|: SW %.3f, STE %.3f, STEPD %.3f, STLPD %.3f\n"
    (dev 0 Dataio.Datasets.judd_sw) (dev 1 Dataio.Datasets.judd_ste)
    (dev 2 Dataio.Datasets.judd_stepd) (dev 3 Dataio.Datasets.judd_stlpd)

(* ------------------------------------------------------------------ *)
(* E5 / Fig. 5: ftsZ.                                                  *)
(* ------------------------------------------------------------------ *)

let fig5_ftsz () =
  section "fig5_ftsz (population vs deconvolved ftsZ, paper fig 5)";
  let times = Dataio.Datasets.ftsz_measurement_times in
  let config =
    { (base_config ~times) with
      Deconv.Pipeline.noise = Deconv.Noise.Gaussian_fraction 0.05;
      seed = 5;
    }
  in
  let run = Deconv.Pipeline.run config ~profile:Biomodels.Ftsz.profile in
  let t1 =
    Dataio.Table.create ~title:"population ftsZ expression (microarray analogue)"
      ~headers:[ "minutes"; "population" ]
  in
  Dataio.Table.add_rows t1 [ times; run.Deconv.Pipeline.noisy ];
  Dataio.Table.output stdout t1;
  let minutes, deconvolved = Deconv.Pipeline.deconvolved_vs_minutes run in
  let m_s, d_s = curve_rows ~stride:10 minutes deconvolved in
  let _, truth_s = curve_rows ~stride:10 minutes run.Deconv.Pipeline.truth in
  let t2 =
    Dataio.Table.create ~title:"deconvolved ftsZ expression (simulated time = phi x 150 min)"
      ~headers:[ "sim_minutes"; "deconvolved"; "single_cell_truth" ]
  in
  Dataio.Table.add_rows t2 [ m_s; d_s; truth_s ];
  Dataio.Table.output stdout t2;
  let g = run.Deconv.Pipeline.noisy in
  let phases = run.Deconv.Pipeline.phases in
  let estimate = run.Deconv.Pipeline.estimate.Deconv.Solver.profile in
  Printf.printf "population value at t=13min / peak: %.3f (delay invisible in population data)\n"
    (g.(1) /. Vec.max g);
  Printf.printf "transcription delay visible in deconvolved profile: %b (paper: yes)\n"
    (Biomodels.Ftsz.delay_visible ~phases ~values:estimate ~threshold:0.06);
  Printf.printf "post-peak drop with no subsequent increase: %b (paper's new prediction)\n"
    (Biomodels.Ftsz.post_peak_monotone_drop ~phases ~values:estimate ~tolerance:0.08);
  Printf.printf "deconvolved peak phase: %.3f (paper: ~0.4); recovery %s\n"
    phases.(Vec.argmax estimate)
    (Deconv.Metrics.to_string run.Deconv.Pipeline.recovery)

(* ------------------------------------------------------------------ *)
(* E6: volume-model ablation (sec 3.1).                                *)
(* ------------------------------------------------------------------ *)

let abl_volume_model () =
  section "abl_volume_model (sec 3.1 update: smooth vs linear volume; 0.15 vs 0.25 transition)";
  let f1, _ = Lazy.force lv_profiles in
  (* Data always generated with the full 2011 model; noiseless with a fixed
     small lambda so the systematic model-mismatch error dominates. *)
  let run inversion =
    let config =
      { (base_config ~times:lv_times) with
        Deconv.Pipeline.noise = Deconv.Noise.No_noise;
        seed = 6;
        inversion_params = inversion;
        selection = `Fixed 1e-5;
      }
    in
    Deconv.Pipeline.run config ~profile:f1
  in
  let smooth_2011 = run None in
  let linear_2011 =
    run (Some { Cellpop.Params.paper_2011 with Cellpop.Params.volume_model = Cellpop.Params.Linear })
  in
  let full_2009 = run (Some Cellpop.Params.plos_2009) in
  let t =
    Dataio.Table.create
      ~title:"recovery error by inversion model (data: 2011 smooth model, noiseless)"
      ~headers:[ "mu_sst"; "volume(0=lin,1=smooth)"; "rmse"; "nrmse"; "corr" ]
  in
  let row mu vol (r : Deconv.Pipeline.run) =
    Dataio.Table.add_row t
      [| mu; vol; r.Deconv.Pipeline.recovery.Deconv.Metrics.rmse;
         r.Deconv.Pipeline.recovery.Deconv.Metrics.nrmse;
         r.Deconv.Pipeline.recovery.Deconv.Metrics.correlation |]
  in
  row 0.15 1.0 smooth_2011;
  row 0.15 0.0 linear_2011;
  row 0.25 0.0 full_2009;
  Dataio.Table.output stdout t;
  (* How different are the kernels themselves? *)
  let kernel_l1 (a : Cellpop.Kernel.t) (b : Cellpop.Kernel.t) =
    let diff = Mat.sub a.Cellpop.Kernel.q b.Cellpop.Kernel.q in
    Array.fold_left (fun acc x -> acc +. Float.abs x) 0.0 diff.Mat.data
    *. a.Cellpop.Kernel.bin_width
    /. float_of_int (Array.length a.Cellpop.Kernel.times)
  in
  Printf.printf "mean L1 kernel difference: smooth-vs-linear %.4f, 2011-vs-2009 %.4f\n"
    (kernel_l1 smooth_2011.Deconv.Pipeline.kernel linear_2011.Deconv.Pipeline.kernel)
    (kernel_l1 smooth_2011.Deconv.Pipeline.kernel full_2009.Deconv.Pipeline.kernel);
  Printf.printf
    "rmse ratios vs matched model: linear-volume %.2f, full-2009 %.2f (>=1 expected; the\n\
     transition-phase update dominates, volume smoothing is a fidelity refinement)\n"
    (linear_2011.Deconv.Pipeline.recovery.Deconv.Metrics.rmse
    /. smooth_2011.Deconv.Pipeline.recovery.Deconv.Metrics.rmse)
    (full_2009.Deconv.Pipeline.recovery.Deconv.Metrics.rmse
    /. smooth_2011.Deconv.Pipeline.recovery.Deconv.Metrics.rmse)

(* ------------------------------------------------------------------ *)
(* E7: constraint ablation (sec 3.2 update).                           *)
(* ------------------------------------------------------------------ *)

let abl_constraints () =
  section "abl_constraints (sec 2.3/3.2: positivity, conservation, rate continuity)";
  let _, f2 = Lazy.force lv_profiles in
  let run ~times ~profile ~seed ~pos ~cons ~rate =
    let config =
      { (base_config ~times) with
        Deconv.Pipeline.noise = Deconv.Noise.Gaussian_fraction 0.10;
        seed;
        use_positivity = pos;
        use_conservation = cons;
        use_rate_continuity = rate;
      }
    in
    Deconv.Pipeline.run config ~profile
  in
  let sweep title ~times ~profile ~seed =
    let t =
      Dataio.Table.create ~title
        ~headers:[ "positivity"; "conservation"; "rate_cont"; "rmse"; "corr"; "min_f" ]
    in
    List.iter
      (fun (pos, cons, rate) ->
        let r = run ~times ~profile ~seed ~pos ~cons ~rate in
        Dataio.Table.add_row t
          [| (if pos then 1.0 else 0.0); (if cons then 1.0 else 0.0); (if rate then 1.0 else 0.0);
             r.Deconv.Pipeline.recovery.Deconv.Metrics.rmse;
             r.Deconv.Pipeline.recovery.Deconv.Metrics.correlation;
             Vec.min r.Deconv.Pipeline.estimate.Deconv.Solver.profile |])
      [ (false, false, false); (true, false, false); (true, true, false); (true, false, true);
        (true, true, true) ];
    Dataio.Table.output stdout t
  in
  (* LV x2 is periodic, so it mildly VIOLATES the division-conservation
     assumption f(1) = 0.4 f(0) + 0.6 f(phi_sst); ftsZ satisfies it. The two
     panels show the constraints helping when the biology matches and
     costing a little when it does not. *)
  sweep "recovery vs constraints (LV x2, 10% noise; truth violates conservation)"
    ~times:lv_times ~profile:f2 ~seed:7;
  sweep "recovery vs constraints (ftsZ, 10% noise; truth satisfies conservation)"
    ~times:Dataio.Datasets.ftsz_measurement_times ~profile:Biomodels.Ftsz.profile ~seed:17

(* ------------------------------------------------------------------ *)
(* Extension: noise sweep (paper: "several levels and types of noise") *)
(* ------------------------------------------------------------------ *)

let ext_noise_sweep () =
  section "ext_noise_sweep (noise level x type, LV x1)";
  let f1, _ = Lazy.force lv_profiles in
  let t =
    Dataio.Table.create ~title:"recovery vs noise (type 0=additive gaussian, 1=lognormal)"
      ~headers:[ "type"; "level_pct"; "rmse"; "nrmse"; "corr" ]
  in
  List.iter
    (fun (type_id, make_noise) ->
      List.iter
        (fun level ->
          let noise = if Float.equal level 0.0 then Deconv.Noise.No_noise else make_noise level in
          let config =
            { (base_config ~times:lv_times) with Deconv.Pipeline.noise; seed = 8 }
          in
          let r = Deconv.Pipeline.run config ~profile:f1 in
          Dataio.Table.add_row t
            [| type_id; 100.0 *. level; r.Deconv.Pipeline.recovery.Deconv.Metrics.rmse;
               r.Deconv.Pipeline.recovery.Deconv.Metrics.nrmse;
               r.Deconv.Pipeline.recovery.Deconv.Metrics.correlation |])
        [ 0.0; 0.05; 0.10; 0.20 ])
    [
      (0.0, fun level -> Deconv.Noise.Gaussian_fraction level);
      (1.0, fun level -> Deconv.Noise.Multiplicative_lognormal level);
    ];
  Dataio.Table.output stdout t

(* ------------------------------------------------------------------ *)
(* Extension: lambda selection study (sec 2.3, Craven-Wahba).          *)
(* ------------------------------------------------------------------ *)

let ext_lambda_selection () =
  section "ext_lambda_selection (GCV curve, chosen vs oracle, knot sweep)";
  let f1, _ = Lazy.force lv_profiles in
  let config =
    { (base_config ~times:lv_times) with
      Deconv.Pipeline.noise = Deconv.Noise.Gaussian_fraction 0.10;
      seed = 9;
      selection = `Fixed 1e-4;
    }
  in
  let run = Deconv.Pipeline.run config ~profile:f1 in
  let problem = run.Deconv.Pipeline.problem in
  let lambdas = Optimize.Cross_validation.log_lambda_grid ~lo:(-7.0) ~hi:1.0 ~count:17 in
  let gcv_best, curve = Deconv.Lambda.gcv problem ~lambdas in
  let t = Dataio.Table.create ~title:"GCV curve" ~headers:[ "lambda"; "gcv_score"; "oracle_rmse" ] in
  let truth = run.Deconv.Pipeline.truth in
  let oracle_rmse = Array.map (fun lambda ->
      let est = Deconv.Solver.solve ~lambda problem in
      Stats.rmse truth est.Deconv.Solver.profile) lambdas
  in
  Dataio.Table.add_rows t
    [ lambdas; Array.map (fun (p : Deconv.Lambda.curve_point) -> p.Deconv.Lambda.score) curve;
      oracle_rmse ];
  Dataio.Table.output stdout t;
  let oracle_best = lambdas.(Vec.argmin oracle_rmse) in
  Printf.printf "GCV-chosen lambda: %.3g; oracle lambda: %.3g (same order expected)\n" gcv_best
    oracle_best;
  (* Method comparison: lambda and downstream error per selector. *)
  let t_m =
    Dataio.Table.create ~title:"lambda selection methods"
      ~headers:[ "method(0=gcv,1=kfold5,2=lcurve)"; "lambda"; "oracle_rmse_at_lambda" ]
  in
  let rmse_at lambda =
    Stats.rmse truth (Deconv.Solver.solve ~lambda problem).Deconv.Solver.profile
  in
  List.iteri
    (fun i method_ ->
      let lambda = Deconv.Lambda.select problem ~method_ ~rng:(Rng.create 99) ~lambdas () in
      Dataio.Table.add_row t_m [| float_of_int i; lambda; rmse_at lambda |])
    [ `Gcv; `Kfold 5; `Lcurve ];
  Dataio.Table.output stdout t_m;
  (* Knot-count sweep at the GCV lambda. *)
  let t2 = Dataio.Table.create ~title:"knot-count sweep (GCV lambda per size)"
      ~headers:[ "num_knots"; "rmse"; "corr" ] in
  List.iter
    (fun num_knots ->
      let config2 = { config with Deconv.Pipeline.num_knots; selection = `Gcv } in
      let r = Deconv.Pipeline.run config2 ~profile:f1 in
      Dataio.Table.add_row t2
        [| float_of_int num_knots; r.Deconv.Pipeline.recovery.Deconv.Metrics.rmse;
           r.Deconv.Pipeline.recovery.Deconv.Metrics.correlation |])
    [ 6; 8; 10; 12; 16; 20 ];
  Dataio.Table.output stdout t2

(* ------------------------------------------------------------------ *)
(* Extension: parameter estimation (sec 5 ongoing work).               *)
(* ------------------------------------------------------------------ *)

let ext_param_estimation () =
  section "ext_param_estimation (sec 5: fitting LV parameters, population vs deconvolved)";
  let p_true = Biomodels.Lotka_volterra.default_params in
  let x0 = Biomodels.Lotka_volterra.default_x0 in
  let f1, f2 = Lazy.force lv_profiles in
  let noise = Deconv.Noise.Gaussian_fraction 0.05 in
  let config = { (base_config ~times:lv_times) with Deconv.Pipeline.noise; seed = 10 } in
  let run1 = Deconv.Pipeline.run config ~profile:f1 in
  let run2 = Deconv.Pipeline.run config ~profile:f2 in
  (* Objective builder: squared error of the LV solution (both species,
     phase-aligned over one cycle) against target series. *)
  let simulate_profile p =
    match Biomodels.Lotka_volterra.phase_profiles p ~x0 ~n_phi:60 with
    | _, g1, g2 -> Some (g1, g2)
    | exception _ -> None
  in
  let coarse xs =
    (* Resample a 201-bin profile to 60 bins by linear interpolation. *)
    let phases201 = run1.Deconv.Pipeline.phases in
    Array.init 60 (fun j ->
        let phi = (float_of_int j +. 0.5) /. 60.0 in
        Interp.linear_clamped ~x:phases201 ~y:xs phi)
  in
  let objective target1 target2 log_params =
    let p =
      {
        Biomodels.Lotka_volterra.a = exp log_params.(0);
        b = exp log_params.(1);
        c = exp log_params.(2);
        d = exp log_params.(3);
      }
    in
    match simulate_profile p with
    | None -> 1e9
    | Some (g1, g2) ->
      let e1 = Stats.rmse g1 target1 and e2 = Stats.rmse g2 target2 in
      (e1 /. Float.max 0.1 (Vec.max target1)) +. (e2 /. Float.max 0.1 (Vec.max target2))
  in
  let fit target1 target2 =
    let start =
      [| log (p_true.Biomodels.Lotka_volterra.a *. 1.4);
         log (p_true.Biomodels.Lotka_volterra.b /. 1.4);
         log (p_true.Biomodels.Lotka_volterra.c *. 1.3);
         log (p_true.Biomodels.Lotka_volterra.d /. 1.3) |]
    in
    let options = { Optimize.Nelder_mead.default_options with max_iter = 250 } in
    let result = Optimize.Nelder_mead.minimize ~options (objective target1 target2) ~x0:start in
    Array.map exp result.Optimize.Nelder_mead.x
  in
  (* (a) Fit to deconvolved profiles. *)
  let dec1 = coarse run1.Deconv.Pipeline.estimate.Deconv.Solver.profile in
  let dec2 = coarse run2.Deconv.Pipeline.estimate.Deconv.Solver.profile in
  let fitted_dec = fit dec1 dec2 in
  (* (b) Fit to raw population data, pretending it is single-cell data (the
     naive approach the paper argues against): interpolate G(t) onto the
     phase grid via t = phi * 150. *)
  let pop_as_profile run =
    Array.init 60 (fun j ->
        let phi = (float_of_int j +. 0.5) /. 60.0 in
        Interp.linear_clamped ~x:lv_times ~y:run.Deconv.Pipeline.noisy (phi *. 150.0))
  in
  let fitted_pop = fit (pop_as_profile run1) (pop_as_profile run2) in
  let true_params =
    [| p_true.Biomodels.Lotka_volterra.a; p_true.Biomodels.Lotka_volterra.b;
       p_true.Biomodels.Lotka_volterra.c; p_true.Biomodels.Lotka_volterra.d |]
  in
  let t =
    Dataio.Table.create ~title:"LV parameter estimates"
      ~headers:[ "param(0=a,1=b,2=c,3=d)"; "true"; "fit_deconvolved"; "fit_population" ]
  in
  Array.iteri
    (fun i v -> Dataio.Table.add_row t [| float_of_int i; v; fitted_dec.(i); fitted_pop.(i) |])
    true_params;
  Dataio.Table.output stdout t;
  let mean_rel fitted =
    let acc = ref 0.0 in
    Array.iteri (fun i v -> acc := !acc +. (Float.abs (fitted.(i) -. v) /. v)) true_params;
    !acc /. 4.0
  in
  Printf.printf
    "mean relative parameter error: deconvolved %.3f, population %.3f (paper: deconvolution helps)\n"
    (mean_rel fitted_dec) (mean_rel fitted_pop)

(* ------------------------------------------------------------------ *)
(* Ablation: kernel estimator (Monte-Carlo vs analytic, cell count).   *)
(* ------------------------------------------------------------------ *)

let abl_kernel_estimator () =
  section "abl_kernel_estimator (MC kernel vs exact first-cycle quadrature)";
  let params = Cellpop.Params.paper_2011 in
  let short_times = [| 0.0; 20.0; 40.0; 60.0; 80.0 |] in
  let analytic = Cellpop.Kernel_analytic.estimate params ~times:short_times ~n_phi:101 in
  Printf.printf "analytic kernel valid until %.1f min (first division of the fastest cohort)\n"
    (Cellpop.Kernel_analytic.valid_until params);
  let l1_vs_analytic kernel m =
    let ra = Cellpop.Kernel.row analytic m and rk = Cellpop.Kernel.row kernel m in
    let acc = ref 0.0 in
    Array.iteri (fun j a -> acc := !acc +. (Float.abs (a -. rk.(j)) *. analytic.Cellpop.Kernel.bin_width)) ra;
    !acc
  in
  let t =
    Dataio.Table.create ~title:"mean L1 distance to the exact kernel vs MC cell count"
      ~headers:[ "n_cells"; "mean_L1"; "max_L1" ]
  in
  List.iter
    (fun n_cells ->
      let mc =
        Cellpop.Kernel.estimate ~smooth_window:5 params ~rng:(Rng.create 42) ~n_cells
          ~times:short_times ~n_phi:101
      in
      let l1s = Array.init 5 (l1_vs_analytic mc) in
      Dataio.Table.add_row t [| float_of_int n_cells; Vec.mean l1s; Vec.max l1s |])
    [ 250; 1000; 4000; 16000 ];
  Dataio.Table.output stdout t

(* ------------------------------------------------------------------ *)
(* Extension: intrinsic single-cell noise (Gillespie cells).           *)
(* ------------------------------------------------------------------ *)

let ext_intrinsic_noise () =
  section "ext_intrinsic_noise (stochastic single cells, sec 1's 'independent of stochasticity')";
  let p = Biomodels.Lotka_volterra.default_params in
  let params = Cellpop.Params.paper_2011 in
  let times = lv_times in
  let t =
    Dataio.Table.create
      ~title:"recovery of the ensemble-mean profile vs reaction volume (smaller = noisier cells)"
      ~headers:[ "volume"; "intrinsic_cv"; "rmse"; "corr" ]
  in
  List.iter
    (fun volume ->
      let rng = Rng.create 1300 in
      let network =
        Stochastic.Networks.lotka_volterra ~a:p.Biomodels.Lotka_volterra.a
          ~b:p.Biomodels.Lotka_volterra.b ~c:p.Biomodels.Lotka_volterra.c
          ~d:p.Biomodels.Lotka_volterra.d ~volume
      in
      let x0 =
        Stochastic.Networks.concentrations_to_counts ~volume Biomodels.Lotka_volterra.default_x0
      in
      let n_phi_local = 201 in
      let grid = Array.init n_phi_local (fun j -> (float_of_int j +. 0.5) /. 201.0) in
      let pool =
        Array.init 80 (fun _ ->
            let trajectory =
              Stochastic.Gillespie.direct network ~rng:(Rng.split rng) ~x0 ~t0:0.0 ~t1:151.0
            in
            Array.map
              (fun phi -> Stochastic.Gillespie.value_at trajectory ~species:0 (phi *. 150.0) /. volume)
              grid)
      in
      let ensemble_mean =
        Array.init n_phi_local (fun j ->
            Array.fold_left (fun acc cell -> acc +. cell.(j)) 0.0 pool /. 80.0)
      in
      let intrinsic_cv = Stats.cv (Array.map (fun cell -> cell.(100)) pool) in
      let snapshots = Cellpop.Population.simulate params ~rng:(Rng.split rng) ~n0:3000 ~times in
      let signal =
        Array.map
          (fun (s : Cellpop.Population.snapshot) ->
            let num = ref 0.0 and den = ref 0.0 in
            Array.iter
              (fun (c : Cellpop.Cell.t) ->
                let v = Cellpop.Cell.volume params c in
                let cell = Rng.pick rng pool in
                num := !num +. (v *. Interp.linear_clamped ~x:grid ~y:cell c.Cellpop.Cell.phase);
                den := !den +. v)
              s.Cellpop.Population.cells;
            !num /. !den)
          snapshots
      in
      let kernel =
        Cellpop.Kernel.estimate ~smooth_window:5 params ~rng:(Rng.split rng) ~n_cells:3000
          ~times ~n_phi:n_phi_local
      in
      let basis = Spline.Natural.with_uniform_knots ~lo:0.0 ~hi:1.0 ~num_knots:12 in
      let problem = Deconv.Problem.create ~kernel ~basis ~measurements:signal ~params () in
      let lambda = Deconv.Lambda.select problem ~method_:`Gcv () in
      let estimate = Deconv.Solver.solve ~lambda problem in
      let recovery =
        Deconv.Metrics.compare ~truth:ensemble_mean ~estimate:estimate.Deconv.Solver.profile
      in
      Dataio.Table.add_row t
        [| volume; intrinsic_cv; recovery.Deconv.Metrics.rmse; recovery.Deconv.Metrics.correlation |])
    [ 1000.0; 300.0; 100.0; 30.0 ];
  Dataio.Table.output stdout t

(* ------------------------------------------------------------------ *)
(* Extension: identifiability (how ill-posed is the inversion?).       *)
(* ------------------------------------------------------------------ *)

let ext_identifiability () =
  section "ext_identifiability (singular spectrum of the forward operator, sec 2.3)";
  let params = Cellpop.Params.paper_2011 in
  let basis = Spline.Natural.with_uniform_knots ~lo:0.0 ~hi:1.0 ~num_knots:12 in
  let schedules =
    [|
      Array.init 5 (fun i -> 45.0 *. float_of_int i);
      Array.init 7 (fun i -> 30.0 *. float_of_int i);
      Array.init 13 (fun i -> 15.0 *. float_of_int i);
      Array.init 25 (fun i -> 7.5 *. float_of_int i);
    |]
  in
  let reports =
    Deconv.Identifiability.measurement_sweep params ~rng:(Rng.create 1400) ~n_cells:4000 ~basis
      ~schedules ~n_phi:201
  in
  let t =
    Dataio.Table.create ~title:"identifiable spline modes vs measurement count and noise"
      ~headers:[ "num_measurements"; "rank@0.1%"; "rank@1%"; "rank@10%"; "condition" ]
  in
  Array.iter
    (fun (n_m, report) ->
      Dataio.Table.add_row t
        [|
          float_of_int n_m;
          float_of_int (Deconv.Identifiability.effective_rank report ~relative_noise:0.001);
          float_of_int (Deconv.Identifiability.effective_rank report ~relative_noise:0.01);
          float_of_int (Deconv.Identifiability.effective_rank report ~relative_noise:0.1);
          report.Deconv.Identifiability.condition;
        |])
    reports;
  Dataio.Table.output stdout t;
  let _, full = reports.(2) in
  Printf.printf "singular values (13 measurements): %s\n"
    (String.concat " "
       (Array.to_list
          (Array.map (Printf.sprintf "%.2g") full.Deconv.Identifiability.singular_values)))

(* ------------------------------------------------------------------ *)
(* Extension: synchrony decay of the batch culture.                    *)
(* ------------------------------------------------------------------ *)

let ext_synchrony () =
  section "ext_synchrony (how fast the synchronized culture decays to asynchrony)";
  let times = Vec.linspace 0.0 600.0 13 in
  let t =
    Dataio.Table.create ~title:"Kuramoto order parameter R(t) vs cycle-time variability"
      ~headers:[ "minutes"; "R(cv=0.05)"; "R(cv=0.10)"; "R(cv=0.20)" ]
  in
  let series =
    List.map
      (fun cv ->
        let params = { Cellpop.Params.paper_2011 with Cellpop.Params.cv_cycle = cv } in
        let snapshots =
          Cellpop.Population.simulate params ~rng:(Rng.create 1500) ~n0:8000 ~times
        in
        fst (Cellpop.Synchrony.over_time snapshots))
      [ 0.05; 0.10; 0.20 ]
  in
  (match series with
  | [ a; b; c ] -> Dataio.Table.add_rows t [ times; a; b; c ]
  | _ -> assert false);
  Dataio.Table.output stdout t;
  List.iteri
    (fun i r ->
      let cv = List.nth [ 0.05; 0.10; 0.20 ] i in
      match Cellpop.Synchrony.decay_time r ~times ~threshold:0.5 with
      | Some d -> Printf.printf "cv_cycle %.2f: R < 0.5 after %.0f min\n" cv d
      | None -> Printf.printf "cv_cycle %.2f: stays above 0.5 through 600 min\n" cv)
    series

(* ------------------------------------------------------------------ *)
(* Extension: baseline comparison (Richardson-Lucy vs the paper).      *)
(* ------------------------------------------------------------------ *)

let ext_baseline_rl () =
  section "ext_baseline_rl (regularized spline method vs Richardson-Lucy baseline)";
  let f1, _ = Lazy.force lv_profiles in
  let t =
    Dataio.Table.create ~title:"recovery vs noise: paper's method / RL(100) / RL(1000) / naive"
      ~headers:[ "noise_pct"; "spline_rmse"; "rl100_rmse"; "rl1000_rmse"; "naive_rmse" ]
  in
  List.iter
    (fun level ->
      let noise =
        if Float.equal level 0.0 then Deconv.Noise.No_noise else Deconv.Noise.Gaussian_fraction level
      in
      let config = { (base_config ~times:lv_times) with Deconv.Pipeline.noise; seed = 16 } in
      let run = Deconv.Pipeline.run config ~profile:f1 in
      let truth = run.Deconv.Pipeline.truth in
      let spline_rmse = run.Deconv.Pipeline.recovery.Deconv.Metrics.rmse in
      let rl iterations =
        let result =
          Deconv.Richardson_lucy.deconvolve ~iterations run.Deconv.Pipeline.kernel
            ~measurements:run.Deconv.Pipeline.noisy ()
        in
        Stats.rmse truth result.Deconv.Richardson_lucy.profile
      in
      let naive = Deconv.Solver.naive run.Deconv.Pipeline.problem in
      Dataio.Table.add_row t
        [| 100.0 *. level; spline_rmse; rl 100; rl 1000;
           Stats.rmse truth naive.Deconv.Solver.profile |])
    [ 0.0; 0.05; 0.10 ];
  Dataio.Table.output stdout t

(* ------------------------------------------------------------------ *)
(* Extension: bootstrap uncertainty bands.                             *)
(* ------------------------------------------------------------------ *)

let ext_bootstrap () =
  section "ext_bootstrap (residual-bootstrap bands for the deconvolved profile)";
  let f1, _ = Lazy.force lv_profiles in
  let config =
    { (base_config ~times:lv_times) with
      Deconv.Pipeline.noise = Deconv.Noise.Gaussian_fraction 0.10;
      seed = 18;
    }
  in
  let run = Deconv.Pipeline.run config ~profile:f1 in
  let bands =
    Deconv.Bootstrap.residual ~replicates:200 ~level:0.9 run.Deconv.Pipeline.problem
      run.Deconv.Pipeline.estimate ~rng:(Rng.create 1600)
  in
  let t =
    Dataio.Table.create ~title:"90% bands (every 20th phase point)"
      ~headers:[ "phi"; "lower"; "estimate"; "upper"; "truth" ]
  in
  let phases = run.Deconv.Pipeline.phases in
  for j = 0 to Array.length phases - 1 do
    if j mod 20 = 0 then
      Dataio.Table.add_row t
        [| phases.(j); bands.Deconv.Bootstrap.lower.(j);
           run.Deconv.Pipeline.estimate.Deconv.Solver.profile.(j);
           bands.Deconv.Bootstrap.upper.(j); run.Deconv.Pipeline.truth.(j) |]
  done;
  Dataio.Table.output stdout t;
  Printf.printf "mean band width: %.4f; truth coverage: %.2f (sampling-only bands,\n\
                 smoothing bias excluded -- see Deconv.Bootstrap doc)\n"
    (Vec.mean (Deconv.Bootstrap.width bands))
    (Deconv.Bootstrap.coverage bands ~truth:run.Deconv.Pipeline.truth)

(* ------------------------------------------------------------------ *)
(* Extension: whole-regulon batch deconvolution via microarray chain.  *)
(* ------------------------------------------------------------------ *)

let ext_regulon () =
  section "ext_regulon (12-gene panel through the microarray pipeline, batch deconvolution)";
  let genes = Biomodels.Cell_cycle_genes.panel in
  let params = Cellpop.Params.paper_2011 in
  let rng = Rng.create 777 in
  let data_kernel =
    Cellpop.Kernel.estimate ~smooth_window:5 params ~rng:(Rng.split rng) ~n_cells:n_cells
      ~times:lv_times ~n_phi
  in
  let true_signals =
    Mat.of_rows
      (Array.map
         (fun (g : Biomodels.Cell_cycle_genes.gene) ->
           Deconv.Forward.apply_fn data_kernel g.Biomodels.Cell_cycle_genes.profile)
         genes)
  in
  let raw =
    Microarray.Timecourse.simulate ~replicates:3 (Rng.split rng)
      ~gene_names:(Array.map (fun (g : Biomodels.Cell_cycle_genes.gene) -> g.Biomodels.Cell_cycle_genes.name) genes)
      ~times:lv_times ~true_signals
  in
  let processed = Microarray.Timecourse.process raw in
  let inversion_kernel =
    Cellpop.Kernel.estimate ~smooth_window:5 params ~rng:(Rng.split rng) ~n_cells:n_cells
      ~times:lv_times ~n_phi
  in
  let basis = Spline.Natural.with_uniform_knots ~lo:0.0 ~hi:1.0 ~num_knots:12 in
  let batch = Deconv.Batch.prepare ~kernel:inversion_kernel ~basis ~params () in
  let estimates =
    Deconv.Batch.solve_all batch ~sigmas:processed.Microarray.Timecourse.sigmas
      ~measurements:processed.Microarray.Timecourse.estimates ()
  in
  let predicted =
    Deconv.Batch.classify_by_peak batch estimates
      ~boundaries:Biomodels.Cell_cycle_genes.class_boundaries
  in
  let t =
    Dataio.Table.create ~title:"per-gene results"
      ~headers:[ "gene_idx"; "true_peak"; "est_peak"; "true_class"; "pred_class"; "corr" ]
  in
  let phases = Deconv.Batch.phases batch in
  let correct = ref 0 in
  Array.iteri
    (fun i (g : Biomodels.Cell_cycle_genes.gene) ->
      let true_class = Biomodels.Cell_cycle_genes.class_index g in
      if predicted.(i) = true_class then incr correct;
      let truth = Array.map g.Biomodels.Cell_cycle_genes.profile phases in
      Dataio.Table.add_row t
        [| float_of_int i; g.Biomodels.Cell_cycle_genes.peak_phase;
           Deconv.Batch.peak_phase batch estimates.(i); float_of_int true_class;
           float_of_int predicted.(i);
           Stats.correlation truth estimates.(i).Deconv.Solver.profile |])
    genes;
  Dataio.Table.output stdout t;
  Printf.printf "classification accuracy: %d/%d\n" !correct (Array.length genes)

(* ------------------------------------------------------------------ *)
(* Ablation: spline basis choice (natural vs B-spline).                *)
(* ------------------------------------------------------------------ *)

let abl_basis () =
  section "abl_basis (natural cubic basis, as in the paper, vs cubic B-splines)";
  let params = Cellpop.Params.paper_2011 in
  let kernel =
    Cellpop.Kernel.estimate ~smooth_window:5 params ~rng:(Rng.create 2200) ~n_cells:n_cells
      ~times:lv_times ~n_phi
  in
  let f1, _ = Lazy.force lv_profiles in
  let truth = Array.map f1 kernel.Cellpop.Kernel.phases in
  let clean = Deconv.Forward.apply_fn kernel f1 in
  let t =
    Dataio.Table.create ~title:"recovery by basis (matched sizes, GCV lambda, 10% noise)"
      ~headers:[ "basis(0=natural,1=bspline)"; "size"; "rmse"; "corr" ]
  in
  List.iter
    (fun size ->
      let noisy, sigmas =
        Deconv.Noise.apply (Deconv.Noise.Gaussian_fraction 0.10) (Rng.create 2201) clean
      in
      List.iter
        (fun (kind, basis) ->
          let problem =
            Deconv.Problem.create ~sigmas ~kernel ~basis ~measurements:noisy ~params ()
          in
          let lambda = Deconv.Lambda.select problem ~method_:`Gcv () in
          let estimate = Deconv.Solver.solve ~lambda problem in
          let c = Deconv.Metrics.compare ~truth ~estimate:estimate.Deconv.Solver.profile in
          Dataio.Table.add_row t
            [| kind; float_of_int size; c.Deconv.Metrics.rmse; c.Deconv.Metrics.correlation |])
        [
          (0.0, Spline.Natural.with_uniform_knots ~lo:0.0 ~hi:1.0 ~num_knots:size);
          (1.0, Spline.Bspline.create ~lo:0.0 ~hi:1.0 ~num_basis:size);
        ])
    [ 8; 12; 16 ];
  Dataio.Table.output stdout t

(* ------------------------------------------------------------------ *)
(* Extension: population growth vs branching-process theory.           *)
(* ------------------------------------------------------------------ *)

let ext_growth () =
  section "ext_growth (population growth rate vs Euler-Lotka prediction)";
  let t =
    Dataio.Table.create
      ~title:"asymptotic growth: two-type branching theory vs simulation"
      ~headers:[ "mu_sst"; "r_theory"; "r_simulated"; "doubling_theory_min"; "ratio" ]
  in
  List.iter
    (fun mu_sst ->
      let p =
        { Cellpop.Params.paper_2011 with Cellpop.Params.mu_sst; cv_cycle = 0.03; cv_sst = 0.03 }
      in
      let predicted = Cellpop.Population.euler_lotka_rate p in
      let times = Vec.linspace 0.0 700.0 15 in
      let snapshots = Cellpop.Population.simulate p ~rng:(Rng.create 2300) ~n0:2000 ~times in
      let measured = Cellpop.Population.growth_rate snapshots in
      Dataio.Table.add_row t
        [| mu_sst; predicted; measured; log 2.0 /. predicted; measured /. predicted |])
    [ 0.05; 0.15; 0.25 ];
  Dataio.Table.output stdout t;
  Printf.printf
    "(stalked daughters skip the swarmer stage, so the population doubles faster than the\n\
    \ 150-minute cycle; the larger mu_sst, the bigger the shortcut)\n"

(* ------------------------------------------------------------------ *)
(* Ablation: representation (spline basis vs grid Tikhonov).           *)
(* ------------------------------------------------------------------ *)

let abl_representation () =
  section "abl_representation (paper's spline basis vs basis-free grid Tikhonov)";
  let f1, _ = Lazy.force lv_profiles in
  let t =
    Dataio.Table.create
      ~title:"recovery by representation (oracle-best lambda per method, per noise level)"
      ~headers:[ "noise_pct"; "spline_rmse"; "grid_rmse"; "spline_dof"; "grid_dof" ]
  in
  List.iter
    (fun level ->
      let noise =
        if Float.equal level 0.0 then Deconv.Noise.No_noise else Deconv.Noise.Gaussian_fraction level
      in
      let config = { (base_config ~times:lv_times) with Deconv.Pipeline.noise; seed = 28 } in
      let run = Deconv.Pipeline.run config ~profile:f1 in
      let truth = run.Deconv.Pipeline.truth in
      let lambdas = Optimize.Cross_validation.log_lambda_grid ~lo:(-6.0) ~hi:(-1.0) ~count:11 in
      let best_spline =
        Array.fold_left
          (fun acc lambda ->
            let est = Deconv.Solver.solve ~lambda run.Deconv.Pipeline.problem in
            Float.min acc (Stats.rmse truth est.Deconv.Solver.profile))
          Float.infinity lambdas
      in
      let best_grid =
        Array.fold_left
          (fun acc lambda ->
            let est =
              Deconv.Grid_solver.solve ~lambda run.Deconv.Pipeline.kernel
                ~measurements:run.Deconv.Pipeline.noisy ~sigmas:run.Deconv.Pipeline.sigmas ()
            in
            Float.min acc (Stats.rmse truth est.Deconv.Grid_solver.profile))
          Float.infinity lambdas
      in
      Dataio.Table.add_row t [| 100.0 *. level; best_spline; best_grid; 12.0; 201.0 |])
    [ 0.0; 0.10 ];
  Dataio.Table.output stdout t;
  Printf.printf
    "(both regularize to similar accuracy; the spline carries the conservation/rate\n\
    \ constraints naturally and solves a 12-variable QP instead of a 201-variable one)\n"

(* ------------------------------------------------------------------ *)
(* Extension: how much kernel simulation is enough?                    *)
(* ------------------------------------------------------------------ *)

let ext_kernel_budget () =
  section "ext_kernel_budget (recovery vs Monte-Carlo kernel cell count)";
  let f1, _ = Lazy.force lv_profiles in
  let t =
    Dataio.Table.create
      ~title:"recovery vs kernel cell count (5 independent kernels each, 10% noise)"
      ~headers:[ "kernel_cells"; "mean_rmse"; "sd_rmse" ]
  in
  List.iter
    (fun cells ->
      let rmses =
        Array.init 5 (fun k ->
            let config =
              { (base_config ~times:lv_times) with
                Deconv.Pipeline.noise = Deconv.Noise.Gaussian_fraction 0.10;
                n_cells_kernel = cells;
                seed = 29 + k;
              }
            in
            (Deconv.Pipeline.run config ~profile:f1).Deconv.Pipeline.recovery.Deconv.Metrics.rmse)
      in
      Dataio.Table.add_row t [| float_of_int cells; Stats.mean rmses; Stats.std rmses |])
    [ 250; 1000; 4000; 16000 ];
  Dataio.Table.output stdout t

(* ------------------------------------------------------------------ *)
(* Extension: characterizing the asynchrony from observable data.      *)
(* ------------------------------------------------------------------ *)

let ext_calibration () =
  section "ext_calibration (fitting the asynchrony model to cell-type fraction data, sec 1)";
  let boundaries = Cellpop.Celltype.mid_boundaries in
  (* Self-consistency: recover known parameters from simulated fractions. *)
  let truth =
    { Cellpop.Params.paper_2011 with Cellpop.Params.mean_cycle_minutes = 180.0; cv_cycle = 0.18 }
  in
  let times = [| 75.0; 90.0; 105.0; 120.0; 135.0; 150.0 |] in
  let snapshots = Cellpop.Population.simulate truth ~rng:(Rng.create 99) ~n0:20_000 ~times in
  let obs =
    { Cellpop.Calibrate.times;
      fractions = Cellpop.Celltype.fractions_over_time boundaries snapshots }
  in
  let fitted = Cellpop.Calibrate.fit ~base:Cellpop.Params.paper_2011 ~boundaries obs in
  let t =
    Dataio.Table.create ~title:"self-consistency: true vs fitted asynchrony parameters"
      ~headers:[ "param(0=mu_sst,1=T,2=cv)"; "true"; "fitted" ]
  in
  let fp = fitted.Cellpop.Calibrate.params in
  Dataio.Table.add_row t [| 0.0; 0.15; fp.Cellpop.Params.mu_sst |];
  Dataio.Table.add_row t [| 1.0; 180.0; fp.Cellpop.Params.mean_cycle_minutes |];
  Dataio.Table.add_row t [| 2.0; 0.18; fp.Cellpop.Params.cv_cycle |];
  Dataio.Table.output stdout t;
  Printf.printf "objective %.2e in %d simulator evaluations\n"
    fitted.Cellpop.Calibrate.objective_value fitted.Cellpop.Calibrate.evaluations;
  (* Characterize the Judd et al. culture. *)
  let judd_fit =
    Cellpop.Calibrate.fit ~base:Cellpop.Params.paper_2011 ~boundaries Cellpop.Calibrate.judd
  in
  let jp = judd_fit.Cellpop.Calibrate.params in
  Printf.printf
    "Judd et al. culture characterized: mu_sst %.2f, cycle %.0f min, cv %.2f (rms fraction\n\
    \ error %.3f; digitized data, so parameters are indicative)\n"
    jp.Cellpop.Params.mu_sst jp.Cellpop.Params.mean_cycle_minutes jp.Cellpop.Params.cv_cycle
    (sqrt judd_fit.Cellpop.Calibrate.objective_value)

(* ------------------------------------------------------------------ *)
(* Extension: DNA-content (FACS-style) validation of the phase model.  *)
(* ------------------------------------------------------------------ *)

let ext_dna_content () =
  section "ext_dna_content (flow-cytometry observable of the phase distribution)";
  let params = Cellpop.Params.paper_2011 in
  let times = [| 0.0; 30.0; 60.0; 90.0; 120.0; 150.0 |] in
  let snapshots = Cellpop.Population.simulate params ~rng:(Rng.create 2400) ~n0:20_000 ~times in
  let f = Cellpop.Dna_content.fractions_over_time snapshots in
  let t =
    Dataio.Table.create ~title:"DNA-content fractions of the synchronized culture"
      ~headers:[ "minutes"; "1C"; "S_phase"; "2C" ]
  in
  Dataio.Table.add_rows t [ times; Mat.col f 0; Mat.col f 1; Mat.col f 2 ];
  Dataio.Table.output stdout t;
  Printf.printf
    "(all-1C at t=0 because replication initiates at the SW->ST transition; S-phase\n\
    \ sweeps through, then 2C accumulates until divisions reset cells to 1C)\n";
  (* The synchronized culture moves through S-phase as a block (above);
     an ASYNCHRONOUS culture shows the classic spread FACS profile. *)
  let async_params =
    { params with Cellpop.Params.initial_condition = Cellpop.Params.Uniform_phase }
  in
  let async =
    (Cellpop.Population.simulate async_params ~rng:(Rng.create 2402) ~n0:20_000 ~times:[| 0.0 |]).(0)
  in
  let one_c, s_phase, two_c = Cellpop.Dna_content.fractions async in
  Printf.printf
    "asynchronous control: 1C %.3f, S %.3f, 2C %.3f (Caulobacter replicates through\n\
    \ most of its cycle, so S dominates; 1C fraction ~ mean phi_sst = 0.15)\n"
    one_c s_phase two_c;
  let h = Cellpop.Dna_content.histogram (Rng.create 2401) async in
  let density = Stats.histogram_density h in
  let mass lo hi =
    let acc = ref 0.0 in
    Array.iteri
      (fun i d ->
        let c = (h.Stats.edges.(i) +. h.Stats.edges.(i + 1)) /. 2.0 in
        if c >= lo && c < hi then acc := !acc +. (d *. (h.Stats.edges.(i + 1) -. h.Stats.edges.(i))))
      density;
    !acc
  in
  Printf.printf "asynchronous histogram mass: <1.1C %.2f, 1.1-1.9C %.2f, >1.9C %.2f\n"
    (mass 0.5 1.1) (mass 1.1 1.9) (mass 1.9 2.5)

(* ------------------------------------------------------------------ *)
(* Extension: condition-dependent asynchrony (sec 1).                  *)
(* ------------------------------------------------------------------ *)

let ext_condition_transfer () =
  section "ext_condition_transfer (condition-dependent kernels, sec 1)";
  (* The same gene measured in two growth conditions: rich medium (150-min
     cycle) and minimal medium (180-min cycle, higher variability). The
     single-cell profile f(phi) is condition-invariant; the kernels are
     not. Deconvolving the minimal-medium data with the matched kernel
     recovers the same profile; using the rich-medium kernel does not. *)
  let profile = Biomodels.Ftsz.profile in
  let rich = Cellpop.Params.paper_2011 in
  let minimal =
    { Cellpop.Params.paper_2011 with Cellpop.Params.mean_cycle_minutes = 180.0; cv_cycle = 0.15 }
  in
  let times = Array.init 13 (fun i -> 18.0 *. float_of_int i) in
  let run ~data_params ~inversion =
    let config =
      { (base_config ~times) with
        Deconv.Pipeline.data_params;
        inversion_params = Some inversion;
        noise = Deconv.Noise.Gaussian_fraction 0.05;
        seed = 26;
      }
    in
    Deconv.Pipeline.run config ~profile
  in
  let matched = run ~data_params:minimal ~inversion:minimal in
  let mismatched = run ~data_params:minimal ~inversion:rich in
  let t =
    Dataio.Table.create
      ~title:"minimal-medium data (180-min cycle): matched vs rich-medium (150-min) kernel"
      ~headers:[ "kernel(0=matched,1=mismatched)"; "rmse"; "corr"; "delay_recovered" ]
  in
  let delay (r : Deconv.Pipeline.run) =
    if
      Biomodels.Ftsz.delay_visible ~phases:r.Deconv.Pipeline.phases
        ~values:r.Deconv.Pipeline.estimate.Deconv.Solver.profile ~threshold:0.06
    then 1.0
    else 0.0
  in
  Dataio.Table.add_row t
    [| 0.0; matched.Deconv.Pipeline.recovery.Deconv.Metrics.rmse;
       matched.Deconv.Pipeline.recovery.Deconv.Metrics.correlation; delay matched |];
  Dataio.Table.add_row t
    [| 1.0; mismatched.Deconv.Pipeline.recovery.Deconv.Metrics.rmse;
       mismatched.Deconv.Pipeline.recovery.Deconv.Metrics.correlation; delay mismatched |];
  Dataio.Table.output stdout t;
  Printf.printf
    "=> re-characterizing the asynchrony per condition (sec 1) is necessary and sufficient\n"

(* ------------------------------------------------------------------ *)
(* Extension: optimal measurement-schedule design.                     *)
(* ------------------------------------------------------------------ *)

let ext_schedule_design () =
  section "ext_schedule_design (D-optimal sampling times vs uniform)";
  let params = Cellpop.Params.paper_2011 in
  let basis = Spline.Natural.with_uniform_knots ~lo:0.0 ~hi:1.0 ~num_knots:12 in
  (* Candidate pool: every 5 minutes over three hours. *)
  let pool_times = Array.init 37 (fun i -> 5.0 *. float_of_int i) in
  let candidate =
    Deconv.Schedule.candidates params ~rng:(Rng.create 1700) ~n_cells:4000 ~times:pool_times
      ~n_phi:201 ~basis
  in
  let budget = 9 in
  let chosen = Deconv.Schedule.greedy candidate ~budget in
  let chosen_times = Deconv.Schedule.times_of candidate chosen in
  let uniform_rows = List.init budget (fun i -> i * 36 / (budget - 1)) in
  let uniform_times = Deconv.Schedule.times_of candidate uniform_rows in
  Printf.printf "budget %d samples\n  D-optimal times: %s\n  uniform times:   %s\n" budget
    (String.concat " " (Array.to_list (Array.map (Printf.sprintf "%g") chosen_times)))
    (String.concat " " (Array.to_list (Array.map (Printf.sprintf "%g") uniform_times)));
  Printf.printf "  log-det information: optimal %.2f vs uniform %.2f\n"
    (Deconv.Schedule.log_det_information candidate.Deconv.Schedule.design ~rows:chosen
       ~ridge:1e-8)
    (Deconv.Schedule.log_det_information candidate.Deconv.Schedule.design ~rows:uniform_rows
       ~ridge:1e-8);
  (* End-to-end payoff: deconvolution error with each schedule. *)
  let f1, _ = Lazy.force lv_profiles in
  let recover times seed =
    let config =
      { (base_config ~times) with
        Deconv.Pipeline.noise = Deconv.Noise.Gaussian_fraction 0.10;
        seed;
      }
    in
    (Deconv.Pipeline.run config ~profile:f1).Deconv.Pipeline.recovery.Deconv.Metrics.rmse
  in
  let avg schedule =
    Vec.mean (Array.of_list (List.map (recover schedule) [ 21; 22; 23 ]))
  in
  let optimal_rmse = avg chosen_times and uniform_rmse = avg uniform_times in
  Printf.printf "  mean recovery rmse over 3 seeds: optimal %.4f vs uniform %.4f\n" optimal_rmse
    uniform_rmse

(* ------------------------------------------------------------------ *)
(* Extension: protein dynamics downstream of the deconvolved mRNA.     *)
(* ------------------------------------------------------------------ *)

let ext_protein () =
  section "ext_protein (predicting the protein profile from deconvolved mRNA)";
  let times = Dataio.Datasets.ftsz_measurement_times in
  let config =
    { (base_config ~times) with
      Deconv.Pipeline.noise = Deconv.Noise.Gaussian_fraction 0.05;
      seed = 5;
    }
  in
  let run = Deconv.Pipeline.run config ~profile:Biomodels.Ftsz.profile in
  let kinetics = { Biomodels.Protein.translation = 0.1; degradation = 0.03 } in
  let phases = run.Deconv.Pipeline.phases in
  let protein_of mrna_values =
    let mrna phi = Interp.linear_clamped ~x:phases ~y:mrna_values phi in
    Biomodels.Protein.steady_profile kinetics ~period:150.0 ~mrna ~phases
  in
  let protein_true = protein_of run.Deconv.Pipeline.truth in
  let protein_from_deconv = protein_of run.Deconv.Pipeline.estimate.Deconv.Solver.profile in
  let c = Deconv.Metrics.compare ~truth:protein_true ~estimate:protein_from_deconv in
  Printf.printf
    "FtsZ protein profile predicted from deconvolved vs true mRNA: %s\n"
    (Deconv.Metrics.to_string c);
  let mrna_peak = phases.(Vec.argmax run.Deconv.Pipeline.truth) in
  let protein_peak = phases.(Vec.argmax protein_true) in
  Printf.printf
    "mRNA peaks at phi %.2f, protein at phi %.2f (lag %.2f of a cycle: slow protein\n\
    \ turnover low-passes the transcript pulse)\n"
    mrna_peak protein_peak
    (Biomodels.Protein.phase_lag ~mrna_peak ~protein_peak);
  let t =
    Dataio.Table.create ~title:"mRNA and protein phase profiles (every 20th point)"
      ~headers:[ "phi"; "mrna_true"; "mrna_deconvolved"; "protein_predicted" ]
  in
  for j = 0 to Array.length phases - 1 do
    if j mod 20 = 0 then
      Dataio.Table.add_row t
        [| phases.(j); run.Deconv.Pipeline.truth.(j);
           run.Deconv.Pipeline.estimate.Deconv.Solver.profile.(j); protein_from_deconv.(j) |]
  done;
  Dataio.Table.output stdout t

(* ------------------------------------------------------------------ *)
(* Extension: other oscillator families.                               *)
(* ------------------------------------------------------------------ *)

let ext_other_oscillators () =
  section "ext_other_oscillators (Goodwin and repressilator under deconvolution)";
  let t =
    Dataio.Table.create ~title:"recovery at 10% noise (GCV lambda)"
      ~headers:[ "model(0=goodwin,1=repressilator_m1,2=repressilator_m2)"; "corr"; "nrmse";
                 "peak_err" ]
  in
  let deconvolve_profile idx (phases, values) =
    let profile phi = Interp.linear_clamped ~x:phases ~y:values phi in
    let config =
      { (base_config ~times:lv_times) with
        Deconv.Pipeline.noise = Deconv.Noise.Gaussian_fraction 0.10;
        seed = 33;
      }
    in
    let run = Deconv.Pipeline.run config ~profile in
    let est = run.Deconv.Pipeline.estimate.Deconv.Solver.profile in
    let peak_true = run.Deconv.Pipeline.phases.(Vec.argmax run.Deconv.Pipeline.truth) in
    let peak_est = run.Deconv.Pipeline.phases.(Vec.argmax est) in
    Dataio.Table.add_row t
      [| idx; run.Deconv.Pipeline.recovery.Deconv.Metrics.correlation;
         run.Deconv.Pipeline.recovery.Deconv.Metrics.nrmse;
         Float.abs (peak_est -. peak_true) |]
  in
  deconvolve_profile 0.0
    (Biomodels.Goodwin.phase_profile Biomodels.Goodwin.default_params
       ~x0:Biomodels.Goodwin.default_x0 ~n_phi:400);
  deconvolve_profile 1.0
    (Biomodels.Repressilator.phase_profile ~species:0 Biomodels.Repressilator.default_params
       ~x0:Biomodels.Repressilator.default_x0 ~n_phi:400);
  deconvolve_profile 2.0
    (Biomodels.Repressilator.phase_profile ~species:1 Biomodels.Repressilator.default_params
       ~x0:Biomodels.Repressilator.default_x0 ~n_phi:400);
  Dataio.Table.output stdout t

(* ------------------------------------------------------------------ *)
(* Extension: Monte-Carlo recovery study over random profiles.         *)
(* ------------------------------------------------------------------ *)

let ext_recovery_study () =
  section "ext_recovery_study (recovery distribution over random single-cell profiles)";
  let t =
    Dataio.Table.create ~title:"recovery distribution (20 random profiles per condition)"
      ~headers:[ "noise_pct"; "median_rmse"; "median_corr"; "worst_corr"; "pct_above_0.9" ]
  in
  List.iter
    (fun level ->
      let noise =
        if Float.equal level 0.0 then Deconv.Noise.No_noise else Deconv.Noise.Gaussian_fraction level
      in
      let config =
        { (base_config ~times:lv_times) with
          Deconv.Pipeline.noise;
          n_cells_kernel = 2000;
          n_cells_data = 2000;
          seed = 19;
        }
      in
      let comparisons =
        Deconv.Study.recovery_distribution ~runs:20 config ~rng:(Rng.create 1800)
      in
      let s = Deconv.Study.summarize comparisons in
      Dataio.Table.add_row t
        [| 100.0 *. level; s.Deconv.Study.median_rmse; s.Deconv.Study.median_correlation;
           s.Deconv.Study.worst_correlation; 100.0 *. s.Deconv.Study.fraction_above_09 |])
    [ 0.0; 0.10 ];
  Dataio.Table.output stdout t

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the computational kernels.             *)
(* ------------------------------------------------------------------ *)

(* Set by the --json flag in main: micro additionally writes its OLS fits
   to BENCH_deconv.json for machine consumption. *)
let json_out = ref false

let micro () =
  section "micro (bechamel kernels)";
  let open Bechamel in
  let open Toolkit in
  let params = Cellpop.Params.paper_2011 in
  let times = lv_times in
  let kernel =
    Cellpop.Kernel.estimate ~smooth_window:5 params ~rng:(Rng.create 77) ~n_cells:2000 ~times
      ~n_phi:101
  in
  let basis = Spline.Natural.with_uniform_knots ~lo:0.0 ~hi:1.0 ~num_knots:12 in
  let f1, _ = Lazy.force lv_profiles in
  let data = Deconv.Forward.apply_fn kernel f1 in
  let problem =
    Deconv.Problem.create ~kernel ~basis ~measurements:data ~params ()
  in
  let spd =
    let a = Mat.init 40 40 (fun i j -> if i = j then 2.0 else 1.0 /. (1.0 +. Float.abs (float_of_int (i - j)))) in
    Mat.add a (Mat.scale 40.0 (Mat.identity 40))
  in
  let rhs = Array.init 40 (fun i -> Float.sin (float_of_int i)) in
  let tests =
    [
      (* One Test.make per reproduced figure: the dominating computation of
         each experiment, so regressions in any figure's runtime show up. *)
      Test.make ~name:"fig1_sample_phase_model"
        (Staged.stage (fun () ->
             let rng = Rng.create 1 in
             for _ = 1 to 1000 do
               ignore (Cellpop.Cell.draw_phi_sst params rng)
             done));
      (* A single forward application sits near the timer's noise floor
         (r^2 hovered around the 0.9 `bench compare` gate, so the record
         kept dropping out of comparison); 10 iterations behind
         Sys.opaque_identity lift the fixture into a clean linear fit.
         Renamed with the unit change — one run is now 10 applications —
         so the trajectory never diffs the new shape against the old
         per-application records. *)
      Test.make ~name:"fig2_forward_model_x10"
        (Staged.stage (fun () ->
             for _ = 1 to 10 do
               ignore (Sys.opaque_identity (Deconv.Forward.apply_fn kernel f1))
             done));
      Test.make ~name:"fig3_constrained_solve"
        (Staged.stage (fun () -> ignore (Deconv.Solver.solve ~lambda:1e-4 problem)));
      Test.make ~name:"fig4_population_sim_500"
        (Staged.stage (fun () ->
             ignore
               (Cellpop.Population.simulate params ~rng:(Rng.create 3) ~n0:500
                  ~times:[| 0.0; 75.0; 150.0 |])));
      Test.make ~name:"fig5_kernel_estimate_500"
        (Staged.stage (fun () ->
             ignore
               (Cellpop.Kernel.estimate params ~rng:(Rng.create 4) ~n_cells:500 ~times
                  ~n_phi:101)));
      (* Cold path: every run pays the Demmler-Reinsch factorization plus
         7 O(n) candidate evaluations (before the spectral layer this was
         7 full Ridge solves). *)
      Test.make ~name:"gcv_lambda_scan"
        (Staged.stage (fun () ->
             let lambdas = Optimize.Cross_validation.log_lambda_grid ~lo:(-6.0) ~hi:0.0 ~count:7 in
             ignore (Deconv.Lambda.gcv problem ~lambdas)));
      (* Warm path: the factorization is cached outside the timed region,
         so this is the marginal per-gene cost of the λ sweep inside a
         batch where all genes share one kernel. The body is microseconds,
         so loop 10x behind Sys.opaque_identity for a stable OLS fit. *)
      Test.make ~name:"lambda_select_spectral"
        (Staged.stage
           (let cache = Optimize.Spectral.Cache.create () in
            let lambdas =
              Optimize.Cross_validation.log_lambda_grid ~lo:(-6.0) ~hi:0.0 ~count:7
            in
            ignore (Deconv.Lambda.gcv ~cache problem ~lambdas);
            fun () ->
              for _ = 1 to 10 do
                ignore (Sys.opaque_identity (Deconv.Lambda.gcv ~cache problem ~lambdas))
              done));
      Test.make ~name:"spline_penalty_12"
        (Staged.stage (fun () -> ignore (Spline.Penalty.second_derivative basis)));
      Test.make ~name:"linalg_cholesky_40"
        (Staged.stage (fun () ->
             ignore (Linalg.cholesky_solve (Linalg.cholesky_factor spd) rhs)));
      Test.make ~name:"rk45_lv_one_period"
        (Staged.stage (fun () ->
             ignore
               (Biomodels.Lotka_volterra.simulate Biomodels.Lotka_volterra.default_params
                  ~x0:Biomodels.Lotka_volterra.default_x0 ~times:[| 0.0; 150.0 |])));
      Test.make ~name:"gillespie_lv_one_period"
        (Staged.stage (fun () ->
             let net =
               Stochastic.Networks.lotka_volterra ~a:0.0456 ~b:0.0091 ~c:0.038 ~d:0.0456
                 ~volume:100.0
             in
             ignore
               (Stochastic.Gillespie.direct net ~rng:(Rng.create 5) ~x0:[| 35; 500 |] ~t0:0.0
                  ~t1:150.0)));
      Test.make ~name:"calibrate_objective_eval"
        (Staged.stage (fun () ->
             ignore
               (Cellpop.Calibrate.objective ~base:params
                  ~boundaries:Cellpop.Celltype.mid_boundaries ~n_cells:1000 ~seed:7
                  Cellpop.Calibrate.judd params)));
      Test.make ~name:"schedule_greedy_37c_6"
        (Staged.stage
           (let candidate =
              Deconv.Schedule.candidates params ~rng:(Rng.create 6) ~n_cells:500
                ~times:(Array.init 37 (fun i -> 5.0 *. float_of_int i))
                ~n_phi:101 ~basis
            in
            fun () -> ignore (Deconv.Schedule.greedy candidate ~budget:6)));
      (* Guard on the observability layer: with no sink installed a span is
         one branch + closure call, and a disabled counter, resource
         sample or progress update is one branch. If any climbs to
         microseconds, instrumentation has leaked real work into the hot
         paths. The bodies are nanosecond-scale, so each run loops 10000
         times (behind Sys.opaque_identity, or the loop folds away) to
         lift the fixture well above timer noise — at 1000 iterations the
         linear fit was unusable (r^2 ~ 0.6). *)
      Test.make ~name:"obs_span_disabled"
        (Staged.stage (fun () ->
             for _ = 1 to 10000 do
               ignore
                 (Sys.opaque_identity
                    (Obs.Span.with_ "bench.noop" (fun sp -> Obs.Span.set_int sp "i" 0)))
             done));
      Test.make ~name:"obs_metrics_disabled"
        (Staged.stage (fun () ->
             for i = 1 to 10000 do
               Obs.Metrics.incr "bench.noop";
               ignore (Sys.opaque_identity i)
             done));
      Test.make ~name:"obs_sampler_tick_disabled"
        (Staged.stage (fun () ->
             for i = 1 to 10000 do
               Obs.Resource.sample ();
               ignore (Sys.opaque_identity i)
             done));
      (* The diag path with no sink: Obs.Diag.enabled is the branch every
         quality-statistic emitter hoists its work behind, so this is the
         cost solve_robust/Lambda/Qp pay per solve when tracing is off. *)
      Test.make ~name:"obs_diag_disabled"
        (Staged.stage (fun () ->
             for i = 1 to 10000 do
               if Obs.Diag.enabled () then
                 Obs.Diag.emit (Obs.Diag.make ~stage:"bench" ~values:[ ("i", 0.0) ] ());
               ignore (Sys.opaque_identity i)
             done));
      (* One branch per call leaves even 10000 iterations inside timer
         noise; 50000 brings the fit back above the r^2 gate. *)
      Test.make ~name:"obs_progress_update_disabled"
        (Staged.stage (fun () ->
             for i = 1 to 50000 do
               Obs.Progress.record_into None ~ok:true ();
               ignore (Sys.opaque_identity i)
             done));
      (* Dispatch cost of the domain pool: 16 chunks of trivial work. The
         default pool is forced into existence before the suite (below) so
         worker spawning never lands inside the timed region. *)
      Test.make ~name:"parallel_for_overhead"
        (Staged.stage (fun () ->
             Parallel.parallel_for ~chunk:64 ~n:1024 (fun ~lo ~hi ->
                 let acc = ref 0.0 in
                 for i = lo to hi - 1 do
                   acc := !acc +. float_of_int i
                 done;
                 ignore !acc)));
      (* The fault-isolation wrapper's overhead on top of parallel_map:
         same schedule, every slot wrapped in a per-index capture. *)
      Test.make ~name:"parallel_map_result_overhead"
        (Staged.stage (fun () ->
             let (_ : (float, exn) result array) =
               Parallel.parallel_map_result ~chunk:64 ~n:1024 float_of_int
             in
             ()));
      (* Checkpoint journal entry: hex-float serialize + parse round-trip,
         the per-gene cost of --checkpoint/--resume beyond the solve. *)
      Test.make ~name:"checkpoint_entry_roundtrip"
        (Staged.stage
           (let entry =
              {
                Deconv.Checkpoint.gene = 0;
                key = "0123456789abcdef";
                outcome =
                  Ok
                    {
                      Deconv.Solver.alpha = Array.init 12 (fun i -> sin (float_of_int i));
                      profile = Array.init 101 (fun i -> cos (float_of_int i));
                      fitted = Array.init 13 float_of_int;
                      lambda = 1.234e-4;
                      cost = 0.5678;
                      data_misfit = 0.1234;
                      roughness = 42.0;
                      active_positivity = 3;
                      qp_iterations = 17;
                    };
              }
            in
            fun () ->
              ignore (Deconv.Checkpoint.entry_of_line (Deconv.Checkpoint.entry_json entry))));
      (* The whole-program checker on a synthetic 40-module corpus: a
         40-deep cross-file call chain (worst case for the effect
         fixpoint) capped by a Parallel fan-out, so parse, graph build,
         propagation and the R10/R11 root scans are all on the clock.
         Synthetic sources keep the workload identical regardless of the
         working directory or repository drift. *)
      Test.make ~name:"lint_check"
        (Staged.stage
           (let sources =
              List.init 40 (fun i ->
                  let body =
                    if i = 0 then "let f00 x = if x < 0 then failwith \"neg\" else x"
                    else if i = 39 then
                      Printf.sprintf
                        "let f39 () = Parallel.parallel_map ~n:4 (fun x -> M38.f38 x)"
                    else
                      Printf.sprintf "let f%02d x = M%02d.f%02d (x + 1)" i (i - 1) (i - 1)
                  in
                  (Printf.sprintf "lib/core/m%02d.ml" i, body))
            in
            fun () -> ignore (Analysis.Policy.check_sources sources)));
    ]
  in
  ignore (Parallel.default ());
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:None () in
  let raw =
    Benchmark.all cfg Instance.[ monotonic_clock ] (Test.make_grouped ~name:"deconv" tests)
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let t = Dataio.Table.create ~title:"kernel timings" ~headers:[ "test_index"; "ns_per_run" ] in
  let names = ref [] in
  Hashtbl.iter (fun name _ -> names := name :: !names) results;
  let sorted = List.sort compare !names in
  let fits =
    List.map
      (fun name ->
        let est = Hashtbl.find results name in
        let ns =
          match Analyze.OLS.estimates est with Some (v :: _) -> v | _ -> Float.nan
        in
        let r2 =
          match Analyze.OLS.r_square est with Some r -> r | None -> Float.nan
        in
        (name, ns, r2))
      sorted
  in
  List.iteri
    (fun i (name, ns, _) ->
      Printf.printf "  %-40s %12.0f ns/run\n" name ns;
      Dataio.Table.add_row t [| float_of_int i; ns |])
    fits;
  if !json_out then begin
    (* Merge into the trajectory instead of clobbering it: micro fits are
       upserted keyed by (name, rev), so re-running refreshes this
       revision's numbers while macro history and other revisions stay. *)
    let path = "BENCH_deconv.json" in
    let rev = Obs.Trajectory.git_rev () in
    let existing =
      match Obs.Trajectory.load ~path with
      | Ok t -> t
      | Error msg ->
        Printf.eprintf "warning: %s unreadable (%s); starting a fresh trajectory\n" path msg;
        Obs.Trajectory.empty
    in
    let merged =
      List.fold_left
        (fun t (name, ns, r2) ->
          Obs.Trajectory.upsert t
            {
              Obs.Trajectory.name;
              rev;
              kind = Obs.Trajectory.Micro;
              ns_per_run = ns;
              r_square = r2;
              runs = 0;
              iterations = Float.nan;
              domains = Parallel.jobs ();
            })
        existing fits
    in
    Obs.Trajectory.save merged ~path;
    Printf.printf "merged OLS fits for %d kernels into %s (rev %s, %d records total)\n"
      (List.length fits) path rev
      (List.length (Obs.Trajectory.records merged))
  end

(* ------------------------------------------------------------------ *)
(* Macro benchmark: end-to-end Pipeline.run timed through Obs spans.   *)
(* ------------------------------------------------------------------ *)

let macro_profile phi = 1.0 +. (0.5 *. Float.sin (2.0 *. Float.pi *. phi))

(* One traced pipeline run: returns the recorded event stream. The memory
   sink is installed only for the duration of the run so span timings come
   from Obs.Clock (rule R7: no raw timing calls outside lib/obs). *)
let run_macro_once config =
  let sink, recorded = Obs.Export.memory () in
  Obs.Export.install sink;
  Fun.protect
    ~finally:(fun () -> Obs.Export.uninstall ())
    (fun () -> ignore (Deconv.Pipeline.run config ~profile:macro_profile));
  recorded ()

let span_total_ns name events =
  List.fold_left
    (fun acc ev ->
      match ev with
      | Obs.Export.Span s when String.equal s.Obs.Export.name name ->
        acc +. (1e9 *. (s.Obs.Export.stop_s -. s.Obs.Export.start_s))
      | _ -> acc)
    0.0 events

let qp_iterations_total events =
  List.fold_left
    (fun acc ev ->
      match ev with
      | Obs.Export.Span s when String.equal s.Obs.Export.name "qp.solve" ->
        (match List.assoc_opt "iterations" s.Obs.Export.attrs with
        | Some (Obs.Export.Int i) -> acc +. float_of_int i
        | _ -> acc)
      | _ -> acc)
    0.0 events

let macro_section ~smoke () =
  section
    (if smoke then "macro_smoke (tiny pipeline, schema check only)"
     else "macro (end-to-end pipeline via Obs spans)");
  let times = Array.init 6 (fun i -> 30.0 *. float_of_int i) in
  let config =
    if smoke then
      { (Deconv.Pipeline.default_config ~times) with
        Deconv.Pipeline.n_cells_kernel = 200;
        n_cells_data = 200;
        n_phi = 31;
        num_knots = 8;
        selection = `Fixed 1e-4;
        seed = 21;
      }
    else
      { (Deconv.Pipeline.default_config ~times) with
        Deconv.Pipeline.n_cells_kernel = 1000;
        n_cells_data = 1000;
        n_phi = 101;
        num_knots = 12;
        selection = `Gcv;
        seed = 21;
      }
  in
  let runs = if smoke then 1 else 3 in
  (* One untimed warm-up run: the first pipeline execution pays allocator
     and cache warm-up that would otherwise skew the recorded means (the
     sub-millisecond stages by 2x or more). *)
  if not smoke then ignore (run_macro_once config);
  let traces = List.init runs (fun _ -> run_macro_once config) in
  let mean f = List.fold_left (fun acc t -> acc +. f t) 0.0 traces /. float_of_int runs in
  let rev = Obs.Trajectory.git_rev () in
  let record name ns iters =
    {
      Obs.Trajectory.name;
      rev;
      kind = Obs.Trajectory.Macro;
      ns_per_run = ns;
      (* Macro timings are plain means over [runs], not OLS fits; NaN marks
         "no fit" and exempts the record from the r² noise gate. *)
      r_square = Float.nan;
      runs;
      iterations = iters;
      domains = Parallel.jobs ();
    }
  in
  let records =
    [
      record "macro.pipeline_run" (mean (span_total_ns "pipeline.run")) (mean qp_iterations_total);
      record "macro.kernel_estimate" (mean (span_total_ns "kernel.estimate")) Float.nan;
      record "macro.lambda_select" (mean (span_total_ns "pipeline.lambda")) Float.nan;
      record "macro.solve" (mean (span_total_ns "pipeline.solve")) (mean qp_iterations_total);
    ]
  in
  List.iter
    (fun (r : Obs.Trajectory.record) ->
      Printf.printf "  %-28s %14.0f ns/run  (mean of %d, %s qp iters)\n" r.Obs.Trajectory.name
        r.Obs.Trajectory.ns_per_run r.Obs.Trajectory.runs
        (if Float.is_finite r.Obs.Trajectory.iterations then
           Printf.sprintf "%.0f" r.Obs.Trajectory.iterations
         else "n/a"))
    records;
  if smoke then begin
    (* Smoke mode never touches the real trajectory: write a scratch file,
       reload it, and assert only schema validity — no timing assertions,
       so the check is deterministic. *)
    let path = "BENCH_smoke.json" in
    let t = List.fold_left Obs.Trajectory.append Obs.Trajectory.empty records in
    Obs.Trajectory.save t ~path;
    match Obs.Trajectory.load ~path with
    | Error msg ->
      Printf.eprintf "bench-smoke: reload failed: %s\n" msg;
      exit 1
    | Ok loaded ->
      let loaded_records = Obs.Trajectory.records loaded in
      let valid (r : Obs.Trajectory.record) =
        String.length r.Obs.Trajectory.name > 0
        && Float.is_finite r.Obs.Trajectory.ns_per_run
        && r.Obs.Trajectory.ns_per_run >= 0.0
        && r.Obs.Trajectory.runs = runs
        && String.length r.Obs.Trajectory.rev > 0
      in
      if
        List.length loaded_records = List.length records
        && List.for_all valid loaded_records
      then Printf.printf "  bench-smoke: %d records round-tripped, schema ok\n"
             (List.length loaded_records)
      else begin
        Printf.eprintf "bench-smoke: record schema validation failed\n";
        exit 1
      end
  end
  else begin
    let path = "BENCH_deconv.json" in
    let existing =
      match Obs.Trajectory.load ~path with
      | Ok t -> t
      | Error msg ->
        Printf.eprintf "warning: %s unreadable (%s); starting a fresh trajectory\n" path msg;
        Obs.Trajectory.empty
    in
    (* Append, never upsert: every macro run adds a point to the history,
       which is what `bench compare` diffs. *)
    let merged = List.fold_left Obs.Trajectory.append existing records in
    Obs.Trajectory.save merged ~path;
    Printf.printf "appended %d macro records to %s (rev %s, %d records total)\n"
      (List.length records) path rev
      (List.length (Obs.Trajectory.records merged))
  end

(* ------------------------------------------------------------------ *)
(* Macro benchmark: multicore speedup of the parallel hot layers.      *)
(* ------------------------------------------------------------------ *)

(* Wall nanoseconds of one [f ()] through the sanctioned clock (rule R7:
   no raw timing calls outside lib/obs). *)
let clock_ns f =
  let t0 = Obs.Clock.now () in
  f ();
  1e9 *. (Obs.Clock.now () -. t0)

(* Times the two dominant parallel layers — kernel estimation (Monte
   Carlo founder fan-out) and the GCV λ sweep — at --jobs 1 and at the
   ambient jobs setting, prints the speedup, and appends records under
   distinct [_mt] names so `bench compare` diffs multicore runs only
   against earlier multicore runs, never against the sequential
   [macro.*] history. *)
let macro_mt () =
  section "macro_mt (parallel layers: --jobs 1 vs the pool)";
  let ambient = Parallel.jobs () in
  let params = Cellpop.Params.paper_2011 in
  let times = lv_times in
  let kernel_job () =
    ignore
      (Cellpop.Kernel.estimate ~smooth_window:5 params ~rng:(Rng.create 311)
         ~n_cells:8000 ~times ~n_phi:201)
  in
  let kernel =
    Cellpop.Kernel.estimate ~smooth_window:5 params ~rng:(Rng.create 312)
      ~n_cells:2000 ~times ~n_phi:101
  in
  let basis = Spline.Natural.with_uniform_knots ~lo:0.0 ~hi:1.0 ~num_knots:12 in
  let f1, _ = Lazy.force lv_profiles in
  let data = Deconv.Forward.apply_fn kernel f1 in
  let problem = Deconv.Problem.create ~kernel ~basis ~measurements:data ~params () in
  let lambdas = Optimize.Cross_validation.log_lambda_grid ~lo:(-6.0) ~hi:0.0 ~count:25 in
  let lambda_job () = ignore (Deconv.Lambda.select problem ~method_:`Gcv ~lambdas ()) in
  let runs = 3 in
  let mean_ns ~jobs job =
    Parallel.set_jobs jobs;
    (* Force the pool into existence so worker spawning stays outside the
       timed region (--jobs 1 never spawns anything). *)
    ignore (Parallel.default ());
    job ();
    let acc = ref 0.0 in
    for _ = 1 to runs do
      acc := !acc +. clock_ns job
    done;
    !acc /. float_of_int runs
  in
  let rev = Obs.Trajectory.git_rev () in
  let bench name job =
    let seq = mean_ns ~jobs:1 job in
    let par = if ambient = 1 then seq else mean_ns ~jobs:ambient job in
    Printf.printf "  %-28s jobs=1 %12.0f ns  jobs=%d %12.0f ns  speedup %.2fx\n" name
      seq ambient par (seq /. par);
    {
      Obs.Trajectory.name;
      rev;
      kind = Obs.Trajectory.Macro;
      ns_per_run = par;
      r_square = Float.nan;
      runs;
      iterations = Float.nan;
      domains = ambient;
    }
  in
  let records =
    [
      bench "macro.kernel_estimate_mt" kernel_job;
      bench "macro.lambda_select_mt" lambda_job;
    ]
  in
  Parallel.set_jobs ambient;
  let path = "BENCH_deconv.json" in
  let existing =
    match Obs.Trajectory.load ~path with
    | Ok t -> t
    | Error msg ->
      Printf.eprintf "warning: %s unreadable (%s); starting a fresh trajectory\n" path msg;
      Obs.Trajectory.empty
  in
  let merged = List.fold_left Obs.Trajectory.append existing records in
  Obs.Trajectory.save merged ~path;
  Printf.printf "appended %d multicore records to %s (rev %s, domains %d)\n"
    (List.length records) path rev ambient

(* ------------------------------------------------------------------ *)
(* Macro benchmark: batch deconvolution throughput (genes/sec).        *)
(* ------------------------------------------------------------------ *)

(* A small genome-scale batch: the 12-gene cell-cycle panel tiled to 48
   genes with fresh 5% noise each, solved through the fault-isolated
   batch path with GCV per gene — so one shared spectral factorization
   amortizes across the whole batch. The record stores ns per gene (a
   size-independent number for `bench compare`); the console line adds
   the genes/sec reading. *)
let macro_batch () =
  section "macro_batch (batch deconvolution throughput, genes/sec)";
  let params = Cellpop.Params.paper_2011 in
  let times = lv_times in
  let kernel =
    Cellpop.Kernel.estimate ~smooth_window:5 params ~rng:(Rng.create 313) ~n_cells:2000
      ~times ~n_phi:101
  in
  let basis = Spline.Natural.with_uniform_knots ~lo:0.0 ~hi:1.0 ~num_knots:12 in
  let batch = Deconv.Batch.prepare ~kernel ~basis ~params () in
  let genes = Biomodels.Cell_cycle_genes.panel in
  let tile = 4 in
  let n_genes = tile * Array.length genes in
  let rng = Rng.create 314 in
  let rows =
    Array.init n_genes (fun i ->
        let g = genes.(i mod Array.length genes) in
        let clean = Deconv.Forward.apply_fn kernel g.Biomodels.Cell_cycle_genes.profile in
        fst (Deconv.Noise.apply (Deconv.Noise.Gaussian_fraction 0.05) (Rng.split rng) clean))
  in
  let measurements = Mat.of_rows rows in
  let job () =
    let outcome = Deconv.Batch.solve_all_result batch ~measurements () in
    if not (Deconv.Batch.Outcome.fully_ok outcome) then begin
      Printf.eprintf "macro_batch: %d/%d genes failed\n"
        (Deconv.Batch.Outcome.failed_count outcome) n_genes;
      exit 1
    end
  in
  (* Warm-up: pool spawn, allocator, and the factorization's first miss
     all land outside the timed region. *)
  ignore (Parallel.default ());
  job ();
  let runs = 3 in
  let acc = ref 0.0 in
  for _ = 1 to runs do
    acc := !acc +. clock_ns job
  done;
  let per_gene = !acc /. float_of_int runs /. float_of_int n_genes in
  Printf.printf "  %-28s %14.0f ns/gene  (%.1f genes/sec, %d genes, mean of %d)\n"
    "macro.batch_solve" per_gene (1e9 /. per_gene) n_genes runs;
  let record =
    {
      Obs.Trajectory.name = "macro.batch_solve";
      rev = Obs.Trajectory.git_rev ();
      kind = Obs.Trajectory.Macro;
      ns_per_run = per_gene;
      r_square = Float.nan;
      runs;
      (* genes per batch, so a reader can reconstruct the total. *)
      iterations = float_of_int n_genes;
      domains = Parallel.jobs ();
    }
  in
  let path = "BENCH_deconv.json" in
  let existing =
    match Obs.Trajectory.load ~path with
    | Ok t -> t
    | Error msg ->
      Printf.eprintf "warning: %s unreadable (%s); starting a fresh trajectory\n" path msg;
      Obs.Trajectory.empty
  in
  Obs.Trajectory.save (Obs.Trajectory.append existing record) ~path;
  Printf.printf "appended macro.batch_solve to %s (rev %s)\n" path
    record.Obs.Trajectory.rev

(* ------------------------------------------------------------------ *)

let sections =
  [
    ("fig1_phase_model", fig1_phase_model);
    ("fig2_lv_noiseless", fig2_lv_noiseless);
    ("fig3_lv_noisy", fig3_lv_noisy);
    ("fig4_cell_types", fig4_cell_types);
    ("fig5_ftsz", fig5_ftsz);
    ("abl_volume_model", abl_volume_model);
    ("abl_constraints", abl_constraints);
    ("abl_kernel_estimator", abl_kernel_estimator);
    ("abl_basis", abl_basis);
    ("ext_growth", ext_growth);
    ("ext_noise_sweep", ext_noise_sweep);
    ("ext_lambda_selection", ext_lambda_selection);
    ("ext_param_estimation", ext_param_estimation);
    ("ext_intrinsic_noise", ext_intrinsic_noise);
    ("ext_identifiability", ext_identifiability);
    ("ext_synchrony", ext_synchrony);
    ("ext_baseline_rl", ext_baseline_rl);
    ("ext_bootstrap", ext_bootstrap);
    ("ext_regulon", ext_regulon);
    ("abl_representation", abl_representation);
    ("ext_kernel_budget", ext_kernel_budget);
    ("ext_calibration", ext_calibration);
    ("ext_dna_content", ext_dna_content);
    ("ext_condition_transfer", ext_condition_transfer);
    ("ext_schedule_design", ext_schedule_design);
    ("ext_protein", ext_protein);
    ("ext_other_oscillators", ext_other_oscillators);
    ("ext_recovery_study", ext_recovery_study);
    ("micro", micro);
    ("macro", macro_section ~smoke:false);
    ("macro_mt", macro_mt);
    ("macro_batch", macro_batch);
    ("macro_smoke", macro_section ~smoke:true);
  ]

let () =
  let argv = match Array.to_list Sys.argv with [] -> [] | _exe :: args -> args in
  json_out := List.mem "--json" argv;
  let requested = List.filter (fun a -> not (String.equal a "--json")) argv in
  (* --json is a property of the micro section; asking for it implies micro. *)
  let requested =
    if !json_out && requested <> [] && not (List.mem "micro" requested) then
      requested @ [ "micro" ]
    else requested
  in
  let to_run =
    if requested = [] then sections
    else
      List.filter (fun (name, _) -> List.mem name requested) sections
  in
  if to_run = [] then begin
    Printf.eprintf "unknown section(s); available:\n";
    List.iter (fun (name, _) -> Printf.eprintf "  %s\n" name) sections;
    exit 1
  end;
  List.iter (fun (_, f) -> f ()) to_run;
  print_newline ()
